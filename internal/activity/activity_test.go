package activity

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSchemaValidation(t *testing.T) {
	base := []Col{
		{Name: "u", Type: TypeString, Kind: KindUser},
		{Name: "t", Type: TypeTime, Kind: KindTime},
		{Name: "a", Type: TypeString, Kind: KindAction},
		{Name: "g", Type: TypeInt, Kind: KindMeasure},
	}
	if _, err := NewSchema(base); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	cases := []struct {
		name string
		cols []Col
	}{
		{"missing user", base[1:]},
		{"duplicate name", append(append([]Col(nil), base...), Col{Name: "U", Type: TypeString, Kind: KindDim})},
		{"two user cols", append(append([]Col(nil), base...), Col{Name: "u2", Type: TypeString, Kind: KindUser})},
		{"int user col", []Col{{Name: "u", Type: TypeInt, Kind: KindUser}, base[1], base[2]}},
		{"string measure", []Col{base[0], base[1], base[2], {Name: "m", Type: TypeString, Kind: KindMeasure}}},
		{"time dim", []Col{base[0], base[1], base[2], {Name: "d", Type: TypeTime, Kind: KindDim}}},
		{"empty name", []Col{{Name: "", Type: TypeString, Kind: KindUser}, base[1], base[2]}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.cols); err == nil {
			t.Errorf("%s: schema accepted", c.name)
		}
	}
}

func TestSchemaLookups(t *testing.T) {
	s := PaperSchema()
	if s.UserCol() != 0 || s.TimeCol() != 1 || s.ActionCol() != 2 {
		t.Errorf("role columns = %d,%d,%d", s.UserCol(), s.TimeCol(), s.ActionCol())
	}
	if s.ColIndex("GOLD") != 5 {
		t.Errorf("case-insensitive ColIndex failed: %d", s.ColIndex("GOLD"))
	}
	if s.ColIndex("nope") != -1 {
		t.Errorf("absent column index = %d", s.ColIndex("nope"))
	}
}

func TestSortByPKAndUserBlocks(t *testing.T) {
	tbl := NewTable(PaperSchema())
	// Insert out of order.
	rows := [][]any{
		{"002", int64(200), "shop", "wizard", "US", int64(30)},
		{"001", int64(100), "launch", "dwarf", "AU", int64(0)},
		{"001", int64(50), "shop", "dwarf", "AU", int64(5)},
		{"002", int64(150), "launch", "wizard", "US", int64(0)},
	}
	for _, r := range rows {
		if err := tbl.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.SortByPK(); err != nil {
		t.Fatal(err)
	}
	wantTimes := []int64{50, 100, 150, 200}
	if !reflect.DeepEqual(tbl.Ints(tbl.Schema().TimeCol()), wantTimes) {
		t.Errorf("times after sort = %v", tbl.Ints(1))
	}
	var blocks []string
	tbl.UserBlocks(func(u string, s, e int) {
		blocks = append(blocks, u)
		if e <= s {
			t.Errorf("empty block for %q", u)
		}
	})
	if !reflect.DeepEqual(blocks, []string{"001", "002"}) {
		t.Errorf("user blocks = %v", blocks)
	}
	if tbl.NumUsers() != 2 {
		t.Errorf("NumUsers = %d", tbl.NumUsers())
	}
}

func TestSortByPKDetectsDuplicates(t *testing.T) {
	tbl := NewTable(PaperSchema())
	for i := 0; i < 2; i++ {
		if err := tbl.Append("001", int64(100), "launch", "dwarf", "AU", int64(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.SortByPK(); err == nil {
		t.Error("duplicate primary key accepted")
	}
}

func TestAppendTypeErrors(t *testing.T) {
	tbl := NewTable(PaperSchema())
	if err := tbl.Append("001", "not-a-time", "launch", "dwarf", "AU", int64(0)); err == nil {
		t.Error("bad time type accepted")
	}
	if err := tbl.Append(1, int64(0), "launch", "dwarf", "AU", int64(0)); err == nil {
		t.Error("bad user type accepted")
	}
	if err := tbl.Append("001", int64(0), "launch"); err == nil {
		t.Error("short row accepted")
	}
	if tbl.Len() != 0 {
		t.Errorf("failed appends mutated the table: len=%d", tbl.Len())
	}
}

func TestPaperTable1(t *testing.T) {
	tbl := PaperTable1()
	if tbl.Len() != 10 {
		t.Fatalf("Table 1 has %d tuples", tbl.Len())
	}
	if tbl.NumUsers() != 3 {
		t.Errorf("Table 1 has %d users", tbl.NumUsers())
	}
	if !tbl.Sorted() {
		t.Error("fixture not sorted")
	}
	// t1 is player 001 launching; last tuple is player 003 fighting.
	if tbl.User(0) != "001" || tbl.Action(0) != "launch" {
		t.Errorf("first tuple = %s/%s", tbl.User(0), tbl.Action(0))
	}
	if tbl.User(9) != "003" || tbl.Action(9) != "fight" {
		t.Errorf("last tuple = %s/%s", tbl.User(9), tbl.Action(9))
	}
}

func TestParseTime(t *testing.T) {
	got, err := ParseTime("2013/05/19:1000")
	if err != nil {
		t.Fatal(err)
	}
	if got != paperTime(2013, 5, 19, 10, 0) {
		t.Errorf("paper layout parsed to %d", got)
	}
	if v, err := ParseTime("12345"); err != nil || v != 12345 {
		t.Errorf("unix seconds parse = %d, %v", v, err)
	}
	if _, err := ParseTime("yesterday"); err == nil {
		t.Error("garbage time accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := PaperTable1()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, PaperSchema())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("round trip len = %d, want %d", got.Len(), tbl.Len())
	}
	for c := 0; c < tbl.Schema().NumCols(); c++ {
		if tbl.Schema().IsStringCol(c) {
			if !reflect.DeepEqual(got.Strings(c), tbl.Strings(c)) {
				t.Errorf("column %d mismatch", c)
			}
		} else if !reflect.DeepEqual(got.Ints(c), tbl.Ints(c)) {
			t.Errorf("column %d mismatch", c)
		}
	}
}

func TestReadCSVHeaderErrors(t *testing.T) {
	schema := PaperSchema()
	cases := []string{
		"player,time,action,role,country\n",             // missing gold
		"player,time,action,role,country,gold,bogus\n",  // unknown column
		"player,player,time,action,role,country,gold\n", // repeated column
	}
	for _, hdr := range cases {
		if _, err := ReadCSV(strings.NewReader(hdr), schema); err == nil {
			t.Errorf("header %q accepted", hdr)
		}
	}
}

func TestReadCSVValueErrors(t *testing.T) {
	schema := PaperSchema()
	bad := "player,time,action,role,country,gold\n001,notatime,launch,dwarf,AU,0\n"
	if _, err := ReadCSV(strings.NewReader(bad), schema); err == nil {
		t.Error("bad time accepted")
	}
	bad = "player,time,action,role,country,gold\n001,100,launch,dwarf,AU,lots\n"
	if _, err := ReadCSV(strings.NewReader(bad), schema); err == nil {
		t.Error("bad int accepted")
	}
}

func TestSortByPKPropertyOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable(PaperSchema())
		users := []string{"u1", "u2", "u3", "u4"}
		actions := []string{"launch", "shop", "fight"}
		used := map[[3]any]bool{}
		for i := 0; i < 100; i++ {
			u := users[rng.Intn(len(users))]
			ts := int64(rng.Intn(50))
			a := actions[rng.Intn(len(actions))]
			key := [3]any{u, ts, a}
			if used[key] {
				continue
			}
			used[key] = true
			if err := tbl.Append(u, ts, a, "r", "c", int64(rng.Intn(10))); err != nil {
				return false
			}
		}
		if err := tbl.SortByPK(); err != nil {
			return false
		}
		for i := 1; i < tbl.Len(); i++ {
			if tbl.User(i-1) > tbl.User(i) {
				return false
			}
			if tbl.User(i-1) == tbl.User(i) && tbl.Time(i-1) > tbl.Time(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMergeSortedPropertyMatchesSortByPK: splitting a random table into two
// sorted halves and merging them must reproduce the fully sorted table, and
// overlapping primary keys must be detected.
func TestMergeSortedPropertyMatchesSortByPK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// MergeSorted requires its inputs to share one schema instance.
		schema := PaperSchema()
		full := NewTable(schema)
		a, b := NewTable(schema), NewTable(schema)
		users := []string{"u1", "u2", "u3", "u4"}
		actions := []string{"launch", "shop", "fight"}
		used := map[[3]any]bool{}
		for i := 0; i < 80; i++ {
			u := users[rng.Intn(len(users))]
			ts := int64(rng.Intn(40))
			ac := actions[rng.Intn(len(actions))]
			key := [3]any{u, ts, ac}
			if used[key] {
				continue
			}
			used[key] = true
			dst := a
			if rng.Intn(2) == 1 {
				dst = b
			}
			gold := int64(rng.Intn(10))
			if err := dst.Append(u, ts, ac, "r", "c", gold); err != nil {
				return false
			}
			if err := full.Append(u, ts, ac, "r", "c", gold); err != nil {
				return false
			}
		}
		if a.SortByPK() != nil || b.SortByPK() != nil || full.SortByPK() != nil {
			return false
		}
		merged, err := MergeSorted(a, b)
		if err != nil || !merged.Sorted() || merged.Len() != full.Len() {
			return false
		}
		for c := 0; c < full.Schema().NumCols(); c++ {
			for r := 0; r < full.Len(); r++ {
				if full.Schema().IsStringCol(c) {
					if merged.Strings(c)[r] != full.Strings(c)[r] {
						return false
					}
				} else if merged.Ints(c)[r] != full.Ints(c)[r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortedRejectsDuplicatePK(t *testing.T) {
	schema := PaperSchema()
	a, b := NewTable(schema), NewTable(schema)
	for _, tbl := range []*Table{a, b} {
		if err := tbl.Append("u", int64(5), "launch", "r", "c", int64(0)); err != nil {
			t.Fatal(err)
		}
		if err := tbl.SortByPK(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MergeSorted(a, b); err == nil {
		t.Fatal("MergeSorted accepted a cross-input primary-key violation")
	}
}

func TestAssertSortedByPK(t *testing.T) {
	tbl := NewTable(PaperSchema())
	for i, a := range []string{"launch", "shop"} {
		if err := tbl.Append("u", int64(i), a, "r", "c", int64(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.AssertSortedByPK(); err != nil || !tbl.Sorted() {
		t.Fatalf("sorted rows rejected: %v", err)
	}
	bad := NewTable(PaperSchema())
	if err := bad.Append("u", int64(9), "launch", "r", "c", int64(0)); err != nil {
		t.Fatal(err)
	}
	if err := bad.Append("u", int64(1), "shop", "r", "c", int64(0)); err != nil {
		t.Fatal(err)
	}
	if err := bad.AssertSortedByPK(); err == nil || bad.Sorted() {
		t.Fatal("out-of-order rows passed AssertSortedByPK")
	}
	dup := NewTable(PaperSchema())
	for i := 0; i < 2; i++ {
		if err := dup.Append("u", int64(1), "launch", "r", "c", int64(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dup.AssertSortedByPK(); err == nil {
		t.Fatal("duplicate primary key passed AssertSortedByPK")
	}
}
