// Package activity defines the paper's extended relation — the activity
// table D(Au, At, Ae, A1..An) of Section 3.1 — together with an in-memory
// builder that enforces the primary-key constraint on (Au, At, Ae) and the
// sorted storage order COHANA relies on, and CSV import/export.
package activity

import (
	"fmt"
	"strings"
)

// ColType is the storage type of a column.
type ColType uint8

// Column storage types. Times are int64 Unix seconds; measures are int64
// (the paper's dataset uses integer gold and session-length measures).
const (
	TypeString ColType = iota
	TypeInt
	TypeTime
)

func (t ColType) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeTime:
		return "time"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// ColKind is the semantic role of a column in the activity data model.
type ColKind uint8

// Column roles. Every activity table has exactly one user, one time and one
// action column; the rest are dimensions or measures.
const (
	KindUser ColKind = iota
	KindTime
	KindAction
	KindDim
	KindMeasure
)

func (k ColKind) String() string {
	switch k {
	case KindUser:
		return "user"
	case KindTime:
		return "time"
	case KindAction:
		return "action"
	case KindDim:
		return "dim"
	case KindMeasure:
		return "measure"
	default:
		return fmt.Sprintf("ColKind(%d)", uint8(k))
	}
}

// Col describes one column of an activity table.
type Col struct {
	Name string
	Type ColType
	Kind ColKind
}

// Schema is an ordered list of columns with the activity-table roles
// resolved. Use NewSchema to validate the invariants.
type Schema struct {
	cols      []Col
	byName    map[string]int
	user      int
	time      int
	action    int
	anonymous bool // reserved; always false today
}

// NewSchema validates and indexes cols. It enforces the activity table
// shape: exactly one KindUser (string), one KindTime (time) and one
// KindAction (string) column, unique case-insensitive names, measures of
// integer type and at least one non-key attribute.
func NewSchema(cols []Col) (*Schema, error) {
	s := &Schema{cols: append([]Col(nil), cols...), byName: make(map[string]int, len(cols)), user: -1, time: -1, action: -1}
	for i, c := range s.cols {
		if c.Name == "" {
			return nil, fmt.Errorf("activity: column %d has empty name", i)
		}
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("activity: duplicate column name %q", c.Name)
		}
		s.byName[key] = i
		switch c.Kind {
		case KindUser:
			if s.user >= 0 {
				return nil, fmt.Errorf("activity: multiple user columns (%q and %q)", s.cols[s.user].Name, c.Name)
			}
			if c.Type != TypeString {
				return nil, fmt.Errorf("activity: user column %q must be string, got %s", c.Name, c.Type)
			}
			s.user = i
		case KindTime:
			if s.time >= 0 {
				return nil, fmt.Errorf("activity: multiple time columns (%q and %q)", s.cols[s.time].Name, c.Name)
			}
			if c.Type != TypeTime {
				return nil, fmt.Errorf("activity: time column %q must be time, got %s", c.Name, c.Type)
			}
			s.time = i
		case KindAction:
			if s.action >= 0 {
				return nil, fmt.Errorf("activity: multiple action columns (%q and %q)", s.cols[s.action].Name, c.Name)
			}
			if c.Type != TypeString {
				return nil, fmt.Errorf("activity: action column %q must be string, got %s", c.Name, c.Type)
			}
			s.action = i
		case KindMeasure:
			if c.Type != TypeInt {
				return nil, fmt.Errorf("activity: measure column %q must be int, got %s", c.Name, c.Type)
			}
		case KindDim:
			if c.Type == TypeTime {
				return nil, fmt.Errorf("activity: dimension column %q may not be time typed", c.Name)
			}
		default:
			return nil, fmt.Errorf("activity: column %q has invalid kind %d", c.Name, c.Kind)
		}
	}
	if s.user < 0 || s.time < 0 || s.action < 0 {
		return nil, fmt.Errorf("activity: schema needs user, time and action columns (have user=%v time=%v action=%v)",
			s.user >= 0, s.time >= 0, s.action >= 0)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for tests and literals.
func MustSchema(cols []Col) *Schema {
	s, err := NewSchema(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns the i-th column definition.
func (s *Schema) Col(i int) Col { return s.cols[i] }

// Cols returns a copy of the column definitions.
func (s *Schema) Cols() []Col { return append([]Col(nil), s.cols...) }

// UserCol returns the index of the user column Au.
func (s *Schema) UserCol() int { return s.user }

// TimeCol returns the index of the time column At.
func (s *Schema) TimeCol() int { return s.time }

// ActionCol returns the index of the action column Ae.
func (s *Schema) ActionCol() int { return s.action }

// ColIndex resolves a case-insensitive column name, returning -1 if absent.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// IsStringCol reports whether column i stores strings (user, action and
// string dimensions).
func (s *Schema) IsStringCol(i int) bool { return s.cols[i].Type == TypeString }

// Equal reports whether two schemas have identical column definitions. Shards
// of one table deserialize to distinct Schema pointers; Equal is the
// structural check that they describe the same table.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i, c := range s.cols {
		if c != o.cols[i] {
			return false
		}
	}
	return true
}

// GameSchema returns the schema of the paper's mobile-game activity table:
// player, time, action, country, city, role dimensions and session length
// and gold measures (Section 5.1).
func GameSchema() *Schema {
	return MustSchema([]Col{
		{Name: "player", Type: TypeString, Kind: KindUser},
		{Name: "time", Type: TypeTime, Kind: KindTime},
		{Name: "action", Type: TypeString, Kind: KindAction},
		{Name: "country", Type: TypeString, Kind: KindDim},
		{Name: "city", Type: TypeString, Kind: KindDim},
		{Name: "role", Type: TypeString, Kind: KindDim},
		{Name: "session", Type: TypeInt, Kind: KindMeasure},
		{Name: "gold", Type: TypeInt, Kind: KindMeasure},
	})
}
