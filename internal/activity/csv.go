package activity

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Time layouts accepted on CSV import. The first is the paper's own format
// ("2013/05/19:1000"); the rest are common interchange layouts. Export
// always uses Unix seconds for lossless round trips.
var timeLayouts = []string{
	"2006/01/02:1504",
	"2006-01-02 15:04:05",
	"2006-01-02",
	time.RFC3339,
}

// ParseTime parses a timestamp in one of the accepted layouts or as raw Unix
// seconds.
func ParseTime(s string) (int64, error) {
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		return secs, nil
	}
	for _, layout := range timeLayouts {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts.Unix(), nil
		}
	}
	return 0, fmt.Errorf("activity: unrecognized time %q", s)
}

// ReadCSV reads an activity table whose header matches schema's column names
// (case-insensitive, any column order). Time columns accept the layouts of
// ParseTime; int columns are base-10.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("activity: reading CSV header: %w", err)
	}
	colOf := make([]int, len(header)) // CSV field -> schema column
	seen := make([]bool, schema.NumCols())
	for f, name := range header {
		c := schema.ColIndex(name)
		if c < 0 {
			return nil, fmt.Errorf("activity: CSV column %q not in schema", name)
		}
		if seen[c] {
			return nil, fmt.Errorf("activity: CSV repeats column %q", name)
		}
		seen[c] = true
		colOf[f] = c
	}
	for c, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("activity: CSV missing column %q", schema.Col(c).Name)
		}
	}
	t := NewTable(schema)
	strs := make([]string, schema.NumCols())
	ints := make([]int64, schema.NumCols())
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("activity: reading CSV line %d: %w", line+1, err)
		}
		line++
		for f, field := range rec {
			c := colOf[f]
			switch schema.Col(c).Type {
			case TypeString:
				strs[c] = field
			case TypeTime:
				ts, err := ParseTime(field)
				if err != nil {
					return nil, fmt.Errorf("activity: line %d column %q: %w", line, schema.Col(c).Name, err)
				}
				ints[c] = ts
			case TypeInt:
				v, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("activity: line %d column %q: %w", line, schema.Col(c).Name, err)
				}
				ints[c] = v
			}
		}
		t.AppendRow(strs, ints)
	}
	return t, nil
}

// WriteCSV writes the table with a header row. Time columns are written as
// Unix seconds so ReadCSV(WriteCSV(t)) is lossless.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	schema := t.Schema()
	header := make([]string, schema.NumCols())
	for i := range header {
		header[i] = schema.Col(i).Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, schema.NumCols())
	for row := 0; row < t.Len(); row++ {
		for c := 0; c < schema.NumCols(); c++ {
			if schema.IsStringCol(c) {
				rec[c] = t.Strings(c)[row]
			} else {
				rec[c] = strconv.FormatInt(t.Ints(c)[row], 10)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
