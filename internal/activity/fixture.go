package activity

import "time"

// PaperSchema returns the schema of Table 1 in the paper: player, time,
// action, role and country dimensions, and the gold measure.
func PaperSchema() *Schema {
	return MustSchema([]Col{
		{Name: "player", Type: TypeString, Kind: KindUser},
		{Name: "time", Type: TypeTime, Kind: KindTime},
		{Name: "action", Type: TypeString, Kind: KindAction},
		{Name: "role", Type: TypeString, Kind: KindDim},
		{Name: "country", Type: TypeString, Kind: KindDim},
		{Name: "gold", Type: TypeInt, Kind: KindMeasure},
	})
}

// paperTime builds the timestamps used in Table 1 ("2013/05/19:1000" etc).
func paperTime(y int, m time.Month, d, hh, mm int) int64 {
	return time.Date(y, m, d, hh, mm, 0, 0, time.UTC).Unix()
}

// PaperTable1 returns the ten example tuples of Table 1 of the paper
// (t1..t10), already sorted by primary key. It is the shared fixture for the
// worked examples of Sections 3.2-3.3.
func PaperTable1() *Table {
	t := NewTable(PaperSchema())
	rows := []struct {
		player  string
		ts      int64
		action  string
		role    string
		country string
		gold    int64
	}{
		{"001", paperTime(2013, 5, 19, 10, 0), "launch", "dwarf", "Australia", 0},
		{"001", paperTime(2013, 5, 20, 8, 0), "shop", "dwarf", "Australia", 50},
		{"001", paperTime(2013, 5, 20, 14, 0), "shop", "dwarf", "Australia", 100},
		{"001", paperTime(2013, 5, 21, 14, 0), "shop", "assassin", "Australia", 50},
		{"001", paperTime(2013, 5, 22, 9, 0), "fight", "assassin", "Australia", 0},
		{"002", paperTime(2013, 5, 20, 9, 0), "launch", "wizard", "United States", 0},
		{"002", paperTime(2013, 5, 21, 15, 0), "shop", "wizard", "United States", 30},
		{"002", paperTime(2013, 5, 22, 17, 0), "shop", "wizard", "United States", 40},
		{"003", paperTime(2013, 5, 20, 10, 0), "launch", "bandit", "China", 0},
		{"003", paperTime(2013, 5, 21, 10, 0), "fight", "bandit", "China", 0},
	}
	for _, r := range rows {
		if err := t.Append(r.player, r.ts, r.action, r.role, r.country, r.gold); err != nil {
			panic(err)
		}
	}
	if err := t.SortByPK(); err != nil {
		panic(err)
	}
	return t
}
