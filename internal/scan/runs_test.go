package scan

import (
	"testing"
)

// TestRunBatchMatchesPerRow pins the run-batch extraction to the per-row
// accessors: Code(r) equals the positional read, and iterating runs yields
// maximal, contiguous, gap-free spans of equal codes.
func TestRunBatchMatchesPerRow(t *testing.T) {
	st := paperStore(t, 1024)
	ch := st.Chunk(0)
	sc := NewScanner(st, ch)
	schema := st.Schema()
	for col := 0; col < schema.NumCols(); col++ {
		if col == schema.UserCol() {
			continue // RLE user column is not a code column
		}
		var rb RunBatch
		perRow := make([]uint64, ch.NumRows())
		if schema.IsStringCol(col) {
			rb = sc.LoadStringRuns(col, 0, ch.NumRows(), nil)
			for r := range perRow {
				perRow[r] = ch.ChunkID(col, r)
			}
		} else {
			rb = sc.LoadIntRuns(col, 0, ch.NumRows(), nil)
			for r := range perRow {
				perRow[r] = ch.Ints(col).Raw(r)
			}
		}
		for r, want := range perRow {
			if got := rb.Code(r); got != want {
				t.Fatalf("col %d row %d: Code=%d, per-row=%d", col, r, got, want)
			}
		}
		// Runs must tile [0, NumRows) exactly, be maximal, and carry the
		// span's common code.
		pos := 0
		it := rb.Runs()
		for {
			run, ok := it.Next()
			if !ok {
				break
			}
			if run.Start != pos {
				t.Fatalf("col %d: run starts at %d, want %d", col, run.Start, pos)
			}
			if run.Len() <= 0 {
				t.Fatalf("col %d: empty run at %d", col, run.Start)
			}
			for r := run.Start; r < run.End; r++ {
				if perRow[r] != run.Code {
					t.Fatalf("col %d row %d: in run of code %d but code is %d", col, r, run.Code, perRow[r])
				}
			}
			if run.End < ch.NumRows() && perRow[run.End] == run.Code {
				t.Fatalf("col %d: run [%d,%d) of code %d not maximal", col, run.Start, run.End, run.Code)
			}
			pos = run.End
		}
		if pos != ch.NumRows() {
			t.Fatalf("col %d: runs cover %d rows, want %d", col, pos, ch.NumRows())
		}
	}
}

// TestRunBatchFind pins the run-aware first-match search against the linear
// scan, for every present code and for an absent one.
func TestRunBatchFind(t *testing.T) {
	st := paperStore(t, 1024)
	ch := st.Chunk(0)
	sc := NewScanner(st, ch)
	actionCol := st.Schema().ActionCol()
	rb := sc.LoadStringRuns(actionCol, 0, ch.NumRows(), nil)
	seen := map[uint64]bool{}
	var maxCode uint64
	for r := 0; r < ch.NumRows(); r++ {
		code := ch.ChunkID(actionCol, r)
		if code > maxCode {
			maxCode = code
		}
		if !seen[code] {
			seen[code] = true
			if got := rb.Find(code); got != r {
				t.Errorf("Find(%d) = %d, want first occurrence %d", code, got, r)
			}
		}
	}
	if got := rb.Find(maxCode + 1); got != -1 {
		t.Errorf("Find(absent) = %d, want -1", got)
	}
}

// TestRunsBetween pins clipped sub-span iteration: runs are truncated at the
// span edges and still tile the span.
func TestRunsBetween(t *testing.T) {
	st := paperStore(t, 1024)
	ch := st.Chunk(0)
	sc := NewScanner(st, ch)
	actionCol := st.Schema().ActionCol()
	rb := sc.LoadStringRuns(actionCol, 0, ch.NumRows(), nil)
	for start := 0; start < ch.NumRows(); start++ {
		for end := start; end <= ch.NumRows(); end++ {
			pos := start
			it := rb.RunsBetween(start, end)
			for {
				run, ok := it.Next()
				if !ok {
					break
				}
				if run.Start != pos || run.End > end {
					t.Fatalf("span [%d,%d): run [%d,%d) out of place (pos %d)",
						start, end, run.Start, run.End, pos)
				}
				for r := run.Start; r < run.End; r++ {
					if ch.ChunkID(actionCol, r) != run.Code {
						t.Fatalf("span [%d,%d) row %d: code mismatch", start, end, r)
					}
				}
				pos = run.End
			}
			if pos != end {
				t.Fatalf("span [%d,%d): covered to %d", start, end, pos)
			}
		}
	}
}

// TestRunBatchBufferReuse pins the zero-allocation contract: loading into a
// buffer with enough capacity allocates nothing, and Buf() hands the storage
// back for the next load.
func TestRunBatchBufferReuse(t *testing.T) {
	st := paperStore(t, 1024)
	ch := st.Chunk(0)
	sc := NewScanner(st, ch)
	actionCol := st.Schema().ActionCol()
	buf := make([]uint64, 0, ch.NumRows())
	allocs := testing.AllocsPerRun(50, func() {
		rb := sc.LoadStringRuns(actionCol, 0, ch.NumRows(), buf)
		buf = rb.Buf()
		it := rb.Runs()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("warm LoadStringRuns+iterate allocates %v times, want 0", allocs)
	}
}

// TestScannerReset pins Reset to fresh-scanner behavior: a recycled scanner
// over a new chunk sees exactly the rows a new scanner sees.
func TestScannerReset(t *testing.T) {
	st := paperStore(t, 3) // one user per chunk
	var sc Scanner
	total := 0
	for c := 0; c < st.NumChunks(); c++ {
		sc.Reset(st, st.Chunk(c))
		for {
			if _, ok := sc.GetNextUser(); !ok {
				break
			}
			for {
				if _, ok := sc.GetNext(); !ok {
					break
				}
				total++
			}
		}
	}
	if total != 10 {
		t.Errorf("scanned %d rows through recycled scanner, want 10", total)
	}
	// Reset mid-iteration discards the current position entirely.
	sc.Reset(st, st.Chunk(0))
	if _, ok := sc.GetNext(); ok {
		t.Error("GetNext returned a row before GetNextUser after Reset")
	}
}
