package scan

import (
	"testing"

	"repro/internal/activity"
	"repro/internal/storage"
)

func paperStore(t *testing.T, chunkSize int) *storage.Table {
	t.Helper()
	st, err := storage.Build(activity.PaperTable1(), storage.Options{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestUserIteration(t *testing.T) {
	st := paperStore(t, 1024) // one chunk, three users
	sc := NewScanner(st, st.Chunk(0))
	var users []uint64
	var sizes []int
	for {
		b, ok := sc.GetNextUser()
		if !ok {
			break
		}
		users = append(users, b.GID)
		n := 0
		for {
			if _, ok := sc.GetNext(); !ok {
				break
			}
			n++
		}
		sizes = append(sizes, n)
	}
	if len(users) != 3 {
		t.Fatalf("users = %v", users)
	}
	want := []int{5, 3, 2} // players 001, 002, 003
	for i, w := range want {
		if sizes[i] != w {
			t.Errorf("user %d block size = %d, want %d", i, sizes[i], w)
		}
	}
}

func TestGetNextBeforeFirstUser(t *testing.T) {
	st := paperStore(t, 1024)
	sc := NewScanner(st, st.Chunk(0))
	if _, ok := sc.GetNext(); ok {
		t.Error("GetNext returned a row before GetNextUser")
	}
}

func TestSkipCurUser(t *testing.T) {
	st := paperStore(t, 1024)
	sc := NewScanner(st, st.Chunk(0))
	b, ok := sc.GetNextUser()
	if !ok {
		t.Fatal("no first user")
	}
	// Consume one row, skip the rest: next GetNext must fail, and the next
	// user must start exactly after the skipped block.
	if _, ok := sc.GetNext(); !ok {
		t.Fatal("no row in first block")
	}
	sc.SkipCurUser()
	if _, ok := sc.GetNext(); ok {
		t.Error("GetNext returned a row after SkipCurUser")
	}
	b2, ok := sc.GetNextUser()
	if !ok {
		t.Fatal("no second user")
	}
	if b2.First != b.End() {
		t.Errorf("second block starts at %d, want %d", b2.First, b.End())
	}
	// SkipCurUser after exhaustion is a no-op.
	sc.SkipCurUser()
}

func TestFindBirthRow(t *testing.T) {
	st := paperStore(t, 1024)
	actionCol := st.Schema().ActionCol()
	shopGID, _ := st.LookupString(actionCol, "shop")
	launchGID, _ := st.LookupString(actionCol, "launch")
	sc := NewScanner(st, st.Chunk(0))

	// Player 001: launch birth at row 0, shop birth at row 1.
	b, _ := sc.GetNextUser()
	if r, ok := sc.FindBirthRow(b, launchGID); !ok || r != 0 {
		t.Errorf("001 launch birth = (%d, %v)", r, ok)
	}
	if r, ok := sc.FindBirthRow(b, shopGID); !ok || r != 1 {
		t.Errorf("001 shop birth = (%d, %v)", r, ok)
	}
	// Player 002: shop birth at row 6 (second tuple of its block).
	b, _ = sc.GetNextUser()
	if r, ok := sc.FindBirthRow(b, shopGID); !ok || r != 6 {
		t.Errorf("002 shop birth = (%d, %v)", r, ok)
	}
	// Player 003 never shopped: no birth tuple (birth time -1).
	b, _ = sc.GetNextUser()
	if _, ok := sc.FindBirthRow(b, shopGID); ok {
		t.Error("003 has a shop birth")
	}
}

func TestScannerAcrossChunks(t *testing.T) {
	st := paperStore(t, 3) // one user per chunk
	total := 0
	for c := 0; c < st.NumChunks(); c++ {
		sc := NewScanner(st, st.Chunk(c))
		if sc.Chunk() != st.Chunk(c) || sc.Table() != st {
			t.Fatal("accessors wrong")
		}
		for {
			if _, ok := sc.GetNextUser(); !ok {
				break
			}
			for {
				if _, ok := sc.GetNext(); !ok {
					break
				}
				total++
			}
		}
	}
	if total != 10 {
		t.Errorf("scanned %d rows, want 10", total)
	}
}
