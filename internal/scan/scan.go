// Package scan implements the modified TableScan operator of Section 4.3:
// a scanner over one compressed chunk that exposes user-block granularity —
// GetNextUser() to position at the next user's activity tuples and
// SkipCurUser() to abandon the rest of the current user's tuples in O(1),
// which is what makes birth-selection push-down profitable.
//
// The paper's implementation advances per-column file pointers; on top of
// the randomly-accessible bit-packed layout of internal/storage the scanner
// only needs to track row positions, and skipping a user is a single cursor
// assignment.
package scan

import (
	"repro/internal/storage"
)

// UserBlock describes the activity tuples of one user inside a chunk: the
// RLE triple (u, f, n) of Section 4.1.
type UserBlock struct {
	GID   uint64 // global user id
	First int    // first row of the user's tuples in the chunk
	N     int    // number of tuples
}

// End returns the row index one past the block.
func (b UserBlock) End() int { return b.First + b.N }

// Scanner iterates one chunk user-block by user-block, and row by row within
// the current block.
type Scanner struct {
	tbl   *storage.Table
	chunk *storage.Chunk

	userIdx int // next RLE run to hand out
	cur     UserBlock
	curOK   bool
	row     int // next row within the current block
}

// NewScanner opens a scanner over one chunk of tbl. The caller provides the
// chunk payload itself — on lazy tables it must hold the chunk pinned
// (storage.Table.PinChunk) for the scanner's lifetime.
func NewScanner(tbl *storage.Table, ch *storage.Chunk) *Scanner {
	return &Scanner{tbl: tbl, chunk: ch}
}

// Reset repositions the scanner over a (possibly different) chunk, as if
// freshly constructed. Pooled executors reuse one Scanner per chunk task
// instead of allocating per chunk.
func (s *Scanner) Reset(tbl *storage.Table, ch *storage.Chunk) {
	*s = Scanner{tbl: tbl, chunk: ch}
}

// Chunk returns the chunk under the scanner.
func (s *Scanner) Chunk() *storage.Chunk { return s.chunk }

// Table returns the table under the scanner.
func (s *Scanner) Table() *storage.Table { return s.tbl }

// GetNextUser advances to the next user block, implicitly skipping whatever
// remains of the current user, and reports whether one exists.
func (s *Scanner) GetNextUser() (UserBlock, bool) {
	if s.userIdx >= s.chunk.NumUsers() {
		s.curOK = false
		return UserBlock{}, false
	}
	gid, first, n := s.chunk.UserRun(s.userIdx)
	s.userIdx++
	s.cur = UserBlock{GID: gid, First: first, N: n}
	s.curOK = true
	s.row = first
	return s.cur, true
}

// GetNext returns the next row index of the current user block, or false
// when the block (or chunk) is exhausted.
func (s *Scanner) GetNext() (int, bool) {
	if !s.curOK || s.row >= s.cur.End() {
		return 0, false
	}
	r := s.row
	s.row++
	return r, true
}

// SkipCurUser abandons the remaining tuples of the current user. The next
// GetNext returns false until GetNextUser is called.
func (s *Scanner) SkipCurUser() {
	if s.curOK {
		s.row = s.cur.End()
	}
}

// FindBirthRow locates the birth activity tuple of the current user for the
// birth action identified by actionGID: the first tuple of the block whose
// action equals the birth action (GetBirthTuple of Algorithm 1, relying on
// the time-ordering property). It returns false if the user never performed
// the action (birth time -1 in Definition 1).
func (s *Scanner) FindBirthRow(block UserBlock, actionGID uint64) (int, bool) {
	actionCol := s.tbl.Schema().ActionCol()
	for r := block.First; r < block.End(); r++ {
		if s.chunk.StringID(actionCol, r) == actionGID {
			return r, true
		}
	}
	return 0, false
}

// The run-batch half of the scanner: instead of handing out one row at a
// time, a RunBatch materializes the bit-packed codes of one column over a row
// span (a user block, typically) into a reusable slice and iterates maximal
// runs of equal codes. Activity tables are sorted, so dimension columns
// (country, role, …) run the length of a user block and the action and time
// columns run in bursts — one encoded-domain verdict per run then covers
// every row of the run.

// CodeRun is one maximal run of equal encoded values: codes[Start:End) all
// equal Code. Rows are chunk row indices.
type CodeRun struct {
	Code       uint64
	Start, End int
}

// Len returns the run length in rows.
func (r CodeRun) Len() int { return r.End - r.Start }

// RunBatch is a row span of one column's codes — chunk-ids for string
// columns, frame-of-reference deltas for integer columns — extracted in one
// batch. The zero value is an empty batch.
type RunBatch struct {
	base  int // chunk row index of codes[0]
	codes []uint64
}

// LoadStringRuns extracts the chunk-ids of string column col for rows
// [start, end) into a RunBatch, reusing buf's storage when it is large
// enough. Recover the buffer for reuse with Buf.
func (s *Scanner) LoadStringRuns(col, start, end int, buf []uint64) RunBatch {
	return RunBatch{base: start, codes: s.chunk.AppendChunkIDs(buf[:0], col, start, end)}
}

// LoadIntRuns extracts the frame-of-reference deltas of integer column col
// for rows [start, end) into a RunBatch. Equal deltas imply equal values, so
// run iteration over deltas is run iteration over the column.
func (s *Scanner) LoadIntRuns(col, start, end int, buf []uint64) RunBatch {
	return RunBatch{base: start, codes: s.chunk.AppendRawInts(buf[:0], col, start, end)}
}

// Buf returns the batch's backing slice, so callers can recycle it into the
// next Load call.
func (b RunBatch) Buf() []uint64 { return b.codes }

// Base returns the chunk row index of the batch's first code — Buf()[i] is
// the code of chunk row Base()+i. Hot loops that walk Buf directly need it to
// translate interval bounds into slice offsets.
func (b RunBatch) Base() int { return b.base }

// Code returns the code at chunk row r, which must lie within the batch.
func (b RunBatch) Code(r int) uint64 { return b.codes[r-b.base] }

// Runs iterates the batch's maximal runs.
func (b RunBatch) Runs() RunIter { return b.RunsBetween(b.base, b.base+len(b.codes)) }

// RunsBetween iterates the maximal runs of the sub-span [start, end), which
// must lie within the batch. Runs are clipped to the span.
func (b RunBatch) RunsBetween(start, end int) RunIter {
	return RunIter{codes: b.codes, base: b.base, pos: start - b.base, end: end - b.base}
}

// RunIter yields (value-id, run) pairs left to right. It is a value type:
// iteration allocates nothing.
type RunIter struct {
	codes    []uint64
	base     int
	pos, end int
}

// Next returns the next maximal run, or ok=false when the span is exhausted.
func (it *RunIter) Next() (CodeRun, bool) {
	if it.pos >= it.end {
		return CodeRun{}, false
	}
	i := it.pos
	c := it.codes[i]
	j := i + 1
	for j < it.end && it.codes[j] == c {
		j++
	}
	it.pos = j
	return CodeRun{Code: c, Start: it.base + i, End: it.base + j}, true
}

// Find returns the first chunk row in the batch whose code equals want, or
// -1 — the run-aware form of the birth-row search: a run that misses is
// skipped whole.
func (b RunBatch) Find(want uint64) int {
	for i := 0; i < len(b.codes); {
		c := b.codes[i]
		if c == want {
			return b.base + i
		}
		j := i + 1
		for j < len(b.codes) && b.codes[j] == c {
			j++
		}
		i = j
	}
	return -1
}
