// Package scan implements the modified TableScan operator of Section 4.3:
// a scanner over one compressed chunk that exposes user-block granularity —
// GetNextUser() to position at the next user's activity tuples and
// SkipCurUser() to abandon the rest of the current user's tuples in O(1),
// which is what makes birth-selection push-down profitable.
//
// The paper's implementation advances per-column file pointers; on top of
// the randomly-accessible bit-packed layout of internal/storage the scanner
// only needs to track row positions, and skipping a user is a single cursor
// assignment.
package scan

import (
	"repro/internal/storage"
)

// UserBlock describes the activity tuples of one user inside a chunk: the
// RLE triple (u, f, n) of Section 4.1.
type UserBlock struct {
	GID   uint64 // global user id
	First int    // first row of the user's tuples in the chunk
	N     int    // number of tuples
}

// End returns the row index one past the block.
func (b UserBlock) End() int { return b.First + b.N }

// Scanner iterates one chunk user-block by user-block, and row by row within
// the current block.
type Scanner struct {
	tbl   *storage.Table
	chunk *storage.Chunk

	userIdx int // next RLE run to hand out
	cur     UserBlock
	curOK   bool
	row     int // next row within the current block
}

// NewScanner opens a scanner over one chunk of tbl. The caller provides the
// chunk payload itself — on lazy tables it must hold the chunk pinned
// (storage.Table.PinChunk) for the scanner's lifetime.
func NewScanner(tbl *storage.Table, ch *storage.Chunk) *Scanner {
	return &Scanner{tbl: tbl, chunk: ch}
}

// Chunk returns the chunk under the scanner.
func (s *Scanner) Chunk() *storage.Chunk { return s.chunk }

// Table returns the table under the scanner.
func (s *Scanner) Table() *storage.Table { return s.tbl }

// GetNextUser advances to the next user block, implicitly skipping whatever
// remains of the current user, and reports whether one exists.
func (s *Scanner) GetNextUser() (UserBlock, bool) {
	if s.userIdx >= s.chunk.NumUsers() {
		s.curOK = false
		return UserBlock{}, false
	}
	gid, first, n := s.chunk.UserRun(s.userIdx)
	s.userIdx++
	s.cur = UserBlock{GID: gid, First: first, N: n}
	s.curOK = true
	s.row = first
	return s.cur, true
}

// GetNext returns the next row index of the current user block, or false
// when the block (or chunk) is exhausted.
func (s *Scanner) GetNext() (int, bool) {
	if !s.curOK || s.row >= s.cur.End() {
		return 0, false
	}
	r := s.row
	s.row++
	return r, true
}

// SkipCurUser abandons the remaining tuples of the current user. The next
// GetNext returns false until GetNextUser is called.
func (s *Scanner) SkipCurUser() {
	if s.curOK {
		s.row = s.cur.End()
	}
}

// FindBirthRow locates the birth activity tuple of the current user for the
// birth action identified by actionGID: the first tuple of the block whose
// action equals the birth action (GetBirthTuple of Algorithm 1, relying on
// the time-ordering property). It returns false if the user never performed
// the action (birth time -1 in Definition 1).
func (s *Scanner) FindBirthRow(block UserBlock, actionGID uint64) (int, bool) {
	actionCol := s.tbl.Schema().ActionCol()
	for r := block.First; r < block.End(); r++ {
		if s.chunk.StringID(actionCol, r) == actionGID {
			return r, true
		}
	}
	return 0, false
}
