package parser

import (
	"strings"
	"testing"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/expr"
)

func mustParseCohort(t *testing.T, src string) *CohortStmt {
	t.Helper()
	stmt, err := ParseCohort(src)
	if err != nil {
		t.Fatalf("ParseCohort(%q): %v", src, err)
	}
	return stmt
}

// TestParsePaperQ1 parses the paper's benchmark query Q1 verbatim
// (Section 5.2).
func TestParsePaperQ1(t *testing.T) {
	stmt := mustParseCohort(t, `
		SELECT country, CohortSize, Age, UserCount()
		FROM GameActions BIRTH FROM action = "launch"
		COHORT BY country`)
	if stmt.From != "GameActions" {
		t.Errorf("From = %q", stmt.From)
	}
	q := stmt.Query
	if q.BirthAction != "launch" || q.BirthActionAttr != "action" {
		t.Errorf("birth action = %q via %q", q.BirthAction, q.BirthActionAttr)
	}
	if q.BirthCond != nil || q.AgeCond != nil {
		t.Errorf("unexpected conditions: %v / %v", q.BirthCond, q.AgeCond)
	}
	if len(q.CohortBy) != 1 || q.CohortBy[0].Col != "country" {
		t.Errorf("cohort by = %+v", q.CohortBy)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Func != cohort.UserCount {
		t.Errorf("aggs = %+v", q.Aggs)
	}
	wantSelect := []SelectKind{KindAttr, KindCohortSize, KindAge, KindAgg}
	for i, w := range wantSelect {
		if stmt.Select[i].Kind != w {
			t.Errorf("select[%d].Kind = %d, want %d", i, stmt.Select[i].Kind, w)
		}
	}
}

// TestParsePaperQ2 covers BETWEEN with date literals.
func TestParsePaperQ2(t *testing.T) {
	stmt := mustParseCohort(t, `
		SELECT country, COHORTSIZE, AGE, UserCount()
		FROM GameActions BIRTH FROM action = "launch" AND
		time BETWEEN "2013-05-21" AND "2013-05-27"
		COHORT BY country`)
	b, ok := stmt.Query.BirthCond.(expr.Between)
	if !ok {
		t.Fatalf("birth cond = %T (%v)", stmt.Query.BirthCond, stmt.Query.BirthCond)
	}
	if b.Lo.Str != "2013-05-21" || b.Hi.Str != "2013-05-27" {
		t.Errorf("between bounds = %v..%v", b.Lo, b.Hi)
	}
}

// TestParsePaperQ4 covers the richest benchmark query: multi-conjunct birth
// condition with IN, and an age condition with Birth().
func TestParsePaperQ4(t *testing.T) {
	stmt := mustParseCohort(t, `
		SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM GameActions BIRTH FROM action = "shop" AND
		time BETWEEN "2013-05-21" AND "2013-05-27" AND
		role = "dwarf" AND
		country IN ["China", "Australia", "United States"]
		AGE ACTIVITIES IN action = "shop" AND country = Birth(country)
		COHORT BY country`)
	q := stmt.Query
	if q.BirthAction != "shop" {
		t.Errorf("birth action = %q", q.BirthAction)
	}
	conjs := expr.Conjuncts(q.BirthCond)
	if len(conjs) != 3 {
		t.Fatalf("birth conjuncts = %d, want 3 (%v)", len(conjs), q.BirthCond)
	}
	if _, ok := conjs[0].(expr.Between); !ok {
		t.Errorf("conj 0 = %T", conjs[0])
	}
	in, ok := conjs[2].(expr.In)
	if !ok || len(in.List) != 3 {
		t.Errorf("conj 2 = %v", conjs[2])
	}
	if !expr.UsesBirth(q.AgeCond) {
		t.Errorf("age cond lost Birth(): %v", q.AgeCond)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Func != cohort.Avg || q.Aggs[0].Col != "gold" {
		t.Errorf("aggs = %+v", q.Aggs)
	}
}

// TestParsePaperQ7 covers AGE comparisons in age conditions.
func TestParsePaperQ7(t *testing.T) {
	stmt := mustParseCohort(t, `
		SELECT country, COHORTSIZE, AGE, UserCount()
		FROM GameActions BIRTH FROM action = "launch"
		AGE ACTIVITIES in AGE < 14
		COHORT BY country`)
	if !expr.UsesAge(stmt.Query.AgeCond) {
		t.Errorf("age cond = %v", stmt.Query.AgeCond)
	}
}

func TestClauseOrderIrrelevant(t *testing.T) {
	a := mustParseCohort(t, `SELECT country, Sum(gold) FROM D
		BIRTH FROM action = "launch" AGE ACTIVITIES IN action = "shop" COHORT BY country`)
	b := mustParseCohort(t, `SELECT country, Sum(gold) FROM D
		AGE ACTIVITIES IN action = "shop" BIRTH FROM action = "launch" COHORT BY country`)
	if a.Query.BirthAction != b.Query.BirthAction || a.Query.AgeCond.String() != b.Query.AgeCond.String() {
		t.Error("clause order changed the parse")
	}
}

func TestParseExtensions(t *testing.T) {
	stmt := mustParseCohort(t, `
		SELECT country, Sum(gold) AS spent, Count()
		FROM D BIRTH FROM action = "launch"
		COHORT BY time(week), country
		AGE UNIT weeks`)
	q := stmt.Query
	if len(q.CohortBy) != 2 || q.CohortBy[0].Col != "time" || q.CohortBy[0].Bin != cohort.Week {
		t.Errorf("cohort by = %+v", q.CohortBy)
	}
	if q.AgeUnit != cohort.Week {
		t.Errorf("age unit = %v", q.AgeUnit)
	}
	if q.Aggs[0].As != "spent" {
		t.Errorf("alias = %q", q.Aggs[0].As)
	}
}

func TestParseConditionForms(t *testing.T) {
	stmt := mustParseCohort(t, `
		SELECT c, Count() FROM D
		BIRTH FROM action = "x" AND (a = "p" OR NOT b != "q") AND g >= 10 AND h NOT IN [1, 2]
		COHORT BY c`)
	s := stmt.Query.BirthCond.String()
	for _, want := range []string{"OR", "NOT", ">=", "IN"} {
		if !strings.Contains(s, want) {
			t.Errorf("condition %q missing %s", s, want)
		}
	}
}

func TestParseMixed(t *testing.T) {
	stmt, err := Parse(`
		WITH cohorts AS (
			SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
			FROM GameActions BIRTH FROM action = "launch"
			COHORT BY country
		)
		SELECT country, AGE, spent FROM cohorts
		WHERE country IN ["Australia", "China"] AND spent > 100
		ORDER BY spent DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	m := stmt.Mixed
	if m == nil {
		t.Fatal("expected mixed statement")
	}
	if m.Alias != "cohorts" || m.Inner.Query.BirthAction != "launch" {
		t.Errorf("alias=%q inner birth=%q", m.Alias, m.Inner.Query.BirthAction)
	}
	if len(m.Cols) != 3 || m.Cols[2] != "spent" {
		t.Errorf("cols = %v", m.Cols)
	}
	if m.Where == nil || m.Order == nil || !m.Order.Desc || m.Limit != 5 {
		t.Errorf("outer parts: where=%v order=%+v limit=%d", m.Where, m.Order, m.Limit)
	}
}

func TestParseMixedForeignTable(t *testing.T) {
	_, err := Parse(`WITH c AS (SELECT x, Count() FROM D BIRTH FROM action = "a" COHORT BY x)
		SELECT x FROM other`)
	if err == nil || !strings.Contains(err.Error(), "sub-query") {
		t.Errorf("foreign FROM accepted: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT c FROM D COHORT BY c", // missing BIRTH FROM
		`SELECT c FROM D BIRTH FROM action = "x"`,                                     // missing COHORT BY
		`SELECT c FROM D BIRTH FROM role = dwarf COHORT BY c`,                         // unquoted literal -> not action = "e"
		`SELECT c FROM D BIRTH FROM time > 5 COHORT BY c`,                             // birth clause not an equality
		`SELECT c FROM D BIRTH FROM action = "x" COHORT BY c extra`,                   // trailing garbage
		`SELECT c FROM D BIRTH FROM action = "x" BIRTH FROM action = "y" COHORT BY c`, // dup clause
		`SELECT Sum( FROM D BIRTH FROM action = "x" COHORT BY c`,                      // broken agg
		`SELECT c FROM D BIRTH FROM action = "x" COHORT BY time(fortnight)`,           // bad unit
		`SELECT c FROM D BIRTH FROM action = "x" AND g ! 3 COHORT BY c`,               // lex error
		`SELECT c FROM D BIRTH FROM action = "x AND g = 3 COHORT BY c`,                // unterminated string
		`SELECT c FROM D BIRTH FROM action = "x" AND v IN [] COHORT BY c`,             // empty IN list
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParsedQueryValidates(t *testing.T) {
	// End-to-end: a parsed paper query must pass cohort.Query validation
	// against the paper schema.
	stmt := mustParseCohort(t, `
		SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM GameActions BIRTH FROM action = "shop"
		AGE ACTIVITIES IN action = "shop" AND AGE < 14
		COHORT BY country`)
	if err := stmt.Query.Validate(paperSchemaForTest()); err != nil {
		t.Errorf("parsed query failed validation: %v", err)
	}
	// BIRTH FROM over a non-action attribute must fail validation.
	stmt2 := mustParseCohort(t, `
		SELECT country, Count() FROM D BIRTH FROM role = "dwarf" COHORT BY country`)
	if err := stmt2.Query.Validate(paperSchemaForTest()); err == nil {
		t.Error("BIRTH FROM on non-action attribute validated")
	}
}

// paperSchemaForTest avoids an import cycle-free shorthand in tests.
func paperSchemaForTest() *activity.Schema { return activity.PaperSchema() }
