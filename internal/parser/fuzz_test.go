package parser

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cohort"
	"repro/internal/expr"
)

// FuzzParse is a round-trip fuzz test: any input must parse without
// panicking, and every successfully parsed cohort statement must survive
// render → parse → render with the second render byte-identical to the
// first (a fixed point), with the two parses agreeing on every semantic
// field. The renderer below quotes strings in the lexer's own escape
// dialect (backslash escapes the next byte, verbatim), so arbitrary literal
// contents round-trip exactly.

// quoteLit renders a string literal the lexer decodes back to s.
func quoteLit(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('"')
	return sb.String()
}

func renderValue(v expr.Value) string {
	if v.Kind == expr.KindString {
		return quoteLit(v.Str)
	}
	return strconv.FormatInt(v.Int, 10)
}

func renderOperand(e expr.Expr) string {
	switch x := e.(type) {
	case expr.Col:
		return x.Name
	case expr.Birth:
		return "Birth(" + x.Name + ")"
	case expr.Age:
		return "AGE"
	case expr.Lit:
		return renderValue(x.Val)
	default:
		return fmt.Sprintf("<?%T>", e)
	}
}

func renderCond(e expr.Expr) string {
	switch x := e.(type) {
	case expr.Cmp:
		return fmt.Sprintf("%s %s %s", renderOperand(x.L), x.Op, renderOperand(x.R))
	case expr.In:
		parts := make([]string, len(x.List))
		for i, v := range x.List {
			parts[i] = renderValue(v)
		}
		return fmt.Sprintf("%s IN [%s]", renderOperand(x.L), strings.Join(parts, ", "))
	case expr.Between:
		return fmt.Sprintf("%s BETWEEN %s AND %s", renderOperand(x.L), renderValue(x.Lo), renderValue(x.Hi))
	case expr.And:
		return fmt.Sprintf("(%s AND %s)", renderCond(x.L), renderCond(x.R))
	case expr.Or:
		return fmt.Sprintf("(%s OR %s)", renderCond(x.L), renderCond(x.R))
	case expr.Not:
		return fmt.Sprintf("NOT (%s)", renderCond(x.E))
	default:
		return renderOperand(e)
	}
}

// renderCohort prints a parsed cohort statement back into the paper's
// syntax.
func renderCohort(stmt *CohortStmt) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, item := range stmt.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch item.Kind {
		case KindAttr:
			sb.WriteString(item.Name)
		case KindCohortSize:
			sb.WriteString("COHORTSIZE")
		case KindAge:
			sb.WriteString("AGE")
		case KindAgg:
			sb.WriteString(item.Agg.Func.String())
			sb.WriteByte('(')
			sb.WriteString(item.Agg.Col)
			sb.WriteByte(')')
			if item.Agg.As != "" {
				sb.WriteString(" AS ")
				sb.WriteString(item.Agg.As)
			}
		}
	}
	q := stmt.Query
	sb.WriteString(" FROM ")
	sb.WriteString(stmt.From)
	sb.WriteString(" BIRTH FROM ")
	attr := q.BirthActionAttr
	if attr == "" {
		attr = "action"
	}
	sb.WriteString(attr)
	sb.WriteString(" = ")
	sb.WriteString(quoteLit(q.BirthAction))
	if q.BirthCond != nil {
		sb.WriteString(" AND ")
		sb.WriteString(renderCond(q.BirthCond))
	}
	if q.AgeCond != nil {
		sb.WriteString(" AGE ACTIVITIES IN ")
		sb.WriteString(renderCond(q.AgeCond))
	}
	sb.WriteString(" AGE UNIT ")
	sb.WriteString(q.AgeUnit.String())
	sb.WriteString(" COHORT BY ")
	for i, k := range q.CohortBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(k.Col)
		if k.Bin != cohort.Day {
			sb.WriteByte('(')
			sb.WriteString(k.Bin.String())
			sb.WriteByte(')')
		}
	}
	return sb.String()
}

// sameQuery compares the semantic fields of two parsed cohort queries.
func sameQuery(t *testing.T, a, b *cohort.Query) {
	t.Helper()
	if a.BirthAction != b.BirthAction || a.AgeUnit != b.AgeUnit {
		t.Fatalf("birth action / age unit diverged: %q/%v vs %q/%v", a.BirthAction, a.AgeUnit, b.BirthAction, b.AgeUnit)
	}
	condStr := func(e expr.Expr) string {
		if e == nil {
			return ""
		}
		return renderCond(e)
	}
	if condStr(a.BirthCond) != condStr(b.BirthCond) {
		t.Fatalf("birth condition diverged: %q vs %q", condStr(a.BirthCond), condStr(b.BirthCond))
	}
	if condStr(a.AgeCond) != condStr(b.AgeCond) {
		t.Fatalf("age condition diverged: %q vs %q", condStr(a.AgeCond), condStr(b.AgeCond))
	}
	if len(a.CohortBy) != len(b.CohortBy) || len(a.Aggs) != len(b.Aggs) {
		t.Fatalf("clause lengths diverged")
	}
	for i := range a.CohortBy {
		if a.CohortBy[i] != b.CohortBy[i] {
			t.Fatalf("cohort key %d diverged: %+v vs %+v", i, a.CohortBy[i], b.CohortBy[i])
		}
	}
	for i := range a.Aggs {
		if a.Aggs[i] != b.Aggs[i] {
			t.Fatalf("aggregate %d diverged: %+v vs %+v", i, a.Aggs[i], b.Aggs[i])
		}
	}
}

func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT country, COHORTSIZE, AGE, UserCount() FROM GameActions BIRTH FROM action = "launch" COHORT BY country`,
		`SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent FROM D BIRTH FROM action = "shop" AND time BETWEEN "2013-05-21" AND "2013-05-27" AGE ACTIVITIES IN action = "shop" COHORT BY country`,
		`SELECT COHORTSIZE, AGE, Avg(gold) FROM D BIRTH FROM action = "shop" AND role = "dwarf" AND country IN ["China", "Australia"] AGE ACTIVITIES IN country = Birth(country) AND AGE < 7 COHORT BY time(week), role AGE UNIT week`,
		`SELECT x, Min(m), Max(m) FROM t BIRTH FROM e = "a\"b\\c" AGE ACTIVITIES IN NOT (x = 1 OR y <> -2) COHORT BY x`,
		`WITH cohorts AS (SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent FROM D BIRTH FROM action = "launch" COHORT BY country) SELECT country, spent FROM cohorts WHERE spent > 10 ORDER BY spent DESC LIMIT 3`,
		`SELECT`, `'`, `"`, "", "SELECT a FROM b", `SELECT a FROM b BIRTH FROM c = 1 COHORT BY d`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src) // must never panic
		if err != nil || stmt.Cohort == nil {
			return
		}
		first := renderCohort(stmt.Cohort)
		stmt2, err := ParseCohort(first)
		if err != nil {
			t.Fatalf("rendered query does not re-parse: %v\ninput:    %q\nrendered: %q", err, src, first)
		}
		sameQuery(t, stmt.Cohort.Query, stmt2.Query)
		if second := renderCohort(stmt2); second != first {
			t.Fatalf("render is not a fixed point:\nfirst:  %q\nsecond: %q", first, second)
		}
	})
}
