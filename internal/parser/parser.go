package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cohort"
	"repro/internal/expr"
)

// SelectItem is one entry of the SELECT list.
type SelectItem struct {
	// Kind discriminates the item.
	Kind SelectKind
	// Name is the attribute name (KindAttr) or output alias (aggregates).
	Name string
	// Agg is set for KindAgg.
	Agg cohort.AggSpec
}

// SelectKind classifies SELECT list entries.
type SelectKind uint8

// Select item kinds: a cohort attribute, the COHORTSIZE keyword, the AGE
// keyword, or an aggregate call.
const (
	KindAttr SelectKind = iota
	KindCohortSize
	KindAge
	KindAgg
)

// CohortStmt is a parsed cohort query (Section 3.4 syntax).
type CohortStmt struct {
	Select []SelectItem
	From   string
	Query  *cohort.Query
}

// OrderBy is the outer ORDER BY of a mixed query.
type OrderBy struct {
	Col  string
	Desc bool
}

// MixedStmt is a parsed mixed query (Section 3.5): a cohort sub-query under
// WITH, consumed by a plain SQL outer query. Per the paper's rules the
// outermost query is SQL and the cohort query is evaluated first.
type MixedStmt struct {
	Alias string      // WITH <alias> AS (...)
	Inner *CohortStmt // the cohort sub-query
	// Outer parts. Cols lists projected result columns (nil = all).
	Cols  []string
	Where expr.Expr // condition over result columns (may be nil)
	Order *OrderBy  // may be nil
	Limit int       // -1 when absent
}

// Stmt is a parsed statement: exactly one of Cohort or Mixed is non-nil.
type Stmt struct {
	Cohort *CohortStmt
	Mixed  *MixedStmt
}

// Parse parses a cohort query or a mixed query.
func Parse(src string) (*Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt *Stmt
	if p.peekKeyword("WITH") {
		m, err := p.parseMixed()
		if err != nil {
			return nil, err
		}
		stmt = &Stmt{Mixed: m}
	} else {
		c, err := p.parseCohort()
		if err != nil {
			return nil, err
		}
		stmt = &Stmt{Cohort: c}
	}
	if !p.at(tokEOF) {
		return nil, p.errf("unexpected %q after end of query", p.cur().text)
	}
	return stmt, nil
}

// ParseCohort parses a plain cohort query.
func ParseCohort(src string) (*CohortStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if stmt.Cohort == nil {
		return nil, fmt.Errorf("parser: expected a cohort query, got a mixed query")
	}
	return stmt.Cohort, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token        { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parser: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// peekKeyword reports whether the current token is the given keyword.
func (p *parser) peekKeyword(kw string) bool {
	return p.at(tokIdent) && strings.EqualFold(p.cur().text, kw)
}

// peekKeyword2 reports whether the current and next tokens are the given
// keywords.
func (p *parser) peekKeyword2(kw1, kw2 string) bool {
	if !p.peekKeyword(kw1) {
		return false
	}
	n := p.toks[p.pos+1]
	return n.kind == tokIdent && strings.EqualFold(n.text, kw2)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peekKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) expect(k tokKind) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %s, got %q", k, p.cur().text)
	}
	return p.advance(), nil
}

// aggFuncs maps function names to aggregate kinds.
var aggFuncs = map[string]cohort.AggFunc{
	"sum":       cohort.Sum,
	"count":     cohort.Count,
	"avg":       cohort.Avg,
	"min":       cohort.Min,
	"max":       cohort.Max,
	"usercount": cohort.UserCount,
}

// units maps unit names for COHORT BY time bins and AGE UNIT.
var units = map[string]cohort.Unit{
	"day": cohort.Day, "days": cohort.Day,
	"week": cohort.Week, "weeks": cohort.Week,
	"month": cohort.Month, "months": cohort.Month,
}

// parseCohort parses SELECT ... FROM t BIRTH FROM ... [AGE ACTIVITIES IN
// ...] COHORT BY ... [AGE UNIT u]. The BIRTH FROM / AGE ACTIVITIES clauses
// may appear in either order (Section 3.4).
func (p *parser) parseCohort() (*CohortStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &CohortStmt{Query: &cohort.Query{}}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if item.Kind == KindAgg {
			stmt.Query.Aggs = append(stmt.Query.Aggs, item.Agg)
		}
		if !p.at(tokComma) {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	stmt.From = from.text
	var sawBirth, sawAge, sawCohort bool
	for {
		switch {
		case p.peekKeyword2("BIRTH", "FROM"):
			if sawBirth {
				return nil, p.errf("duplicate BIRTH FROM clause")
			}
			sawBirth = true
			p.advance()
			p.advance()
			if err := p.parseBirthClause(stmt.Query); err != nil {
				return nil, err
			}
		case p.peekKeyword2("AGE", "ACTIVITIES"):
			if sawAge {
				return nil, p.errf("duplicate AGE ACTIVITIES clause")
			}
			sawAge = true
			p.advance()
			p.advance()
			if err := p.expectKeyword("IN"); err != nil {
				return nil, err
			}
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			stmt.Query.AgeCond = cond
		case p.peekKeyword2("COHORT", "BY"):
			if sawCohort {
				return nil, p.errf("duplicate COHORT BY clause")
			}
			sawCohort = true
			p.advance()
			p.advance()
			if err := p.parseCohortBy(stmt.Query); err != nil {
				return nil, err
			}
		case p.peekKeyword2("AGE", "UNIT"):
			p.advance()
			p.advance()
			u, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			unit, ok := units[strings.ToLower(u.text)]
			if !ok {
				return nil, p.errf("unknown age unit %q", u.text)
			}
			stmt.Query.AgeUnit = unit
		default:
			if !sawBirth {
				return nil, p.errf("missing BIRTH FROM clause")
			}
			if !sawCohort {
				return nil, p.errf("missing COHORT BY clause")
			}
			return stmt, nil
		}
	}
}

// parseSelectItem parses one SELECT entry.
func (p *parser) parseSelectItem() (SelectItem, error) {
	id, err := p.expect(tokIdent)
	if err != nil {
		return SelectItem{}, err
	}
	lower := strings.ToLower(id.text)
	switch lower {
	case "cohortsize":
		return SelectItem{Kind: KindCohortSize}, nil
	case "age":
		return SelectItem{Kind: KindAge}, nil
	}
	if fn, ok := aggFuncs[lower]; ok && p.at(tokLParen) {
		p.advance()
		spec := cohort.AggSpec{Func: fn}
		if p.at(tokIdent) {
			col := p.advance()
			spec.Col = col.text
		}
		if _, err := p.expect(tokRParen); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Kind: KindAgg, Agg: spec}
		if p.peekKeyword("AS") {
			p.advance()
			alias, err := p.expect(tokIdent)
			if err != nil {
				return SelectItem{}, err
			}
			item.Agg.As = alias.text
			item.Name = alias.text
		}
		return item, nil
	}
	return SelectItem{Kind: KindAttr, Name: id.text}, nil
}

// parseBirthClause parses `action = "e" [AND condition]`: the syntax of
// Section 3.4 requires the birth action as the first equality; the remainder
// is the σb condition.
func (p *parser) parseBirthClause(q *cohort.Query) error {
	cond, err := p.parseCondition()
	if err != nil {
		return err
	}
	conjs := expr.Conjuncts(cond)
	first, ok := conjs[0].(expr.Cmp)
	if !ok || first.Op != expr.OpEq {
		return fmt.Errorf("parser: BIRTH FROM must start with action = \"<birth action>\"")
	}
	col, okL := first.L.(expr.Col)
	lit, okR := first.R.(expr.Lit)
	if !okL || !okR || lit.Val.Kind != expr.KindString {
		return fmt.Errorf("parser: BIRTH FROM must start with action = \"<birth action>\"")
	}
	q.BirthActionAttr = col.Name
	q.BirthAction = lit.Val.Str
	q.BirthCond = expr.AndAll(conjs[1:])
	return nil
}

// parseCohortBy parses the COHORT BY list: attr or attr(unit) for time-bin
// cohorts (e.g. time(week)).
func (p *parser) parseCohortBy(q *cohort.Query) error {
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		key := cohort.CohortKey{Col: id.text}
		if p.at(tokLParen) {
			p.advance()
			u, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			unit, ok := units[strings.ToLower(u.text)]
			if !ok {
				return fmt.Errorf("parser: unknown time bin %q", u.text)
			}
			key.Bin = unit
			if _, err := p.expect(tokRParen); err != nil {
				return err
			}
		}
		q.CohortBy = append(q.CohortBy, key)
		if !p.at(tokComma) {
			return nil
		}
		p.advance()
	}
}

// Condition grammar: OR-chains of AND-chains of possibly negated primaries.

func (p *parser) parseCondition() (expr.Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("OR") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("AND") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.peekKeyword("NOT") {
		p.advance()
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.Not{E: inner}, nil
	}
	return p.parsePrimary()
}

// parsePrimary parses parenthesized conditions and comparisons.
func (p *parser) parsePrimary() (expr.Expr, error) {
	if p.at(tokLParen) {
		p.advance()
		inner, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	operand, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	switch {
	case p.peekKeyword("BETWEEN"):
		p.advance()
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return expr.Between{L: operand, Lo: lo, Hi: hi}, nil
	case p.peekKeyword("IN"):
		p.advance()
		list, err := p.parseLiteralList()
		if err != nil {
			return nil, err
		}
		return expr.In{L: operand, List: list}, nil
	case p.peekKeyword("NOT"):
		p.advance()
		if err := p.expectKeyword("IN"); err != nil {
			return nil, err
		}
		list, err := p.parseLiteralList()
		if err != nil {
			return nil, err
		}
		return expr.Not{E: expr.In{L: operand, List: list}}, nil
	}
	var op expr.CmpOp
	switch p.cur().kind {
	case tokEq:
		op = expr.OpEq
	case tokNe:
		op = expr.OpNe
	case tokLt:
		op = expr.OpLt
	case tokLe:
		op = expr.OpLe
	case tokGt:
		op = expr.OpGt
	case tokGe:
		op = expr.OpGe
	default:
		return nil, p.errf("expected a comparison operator, got %q", p.cur().text)
	}
	p.advance()
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return expr.Cmp{Op: op, L: operand, R: right}, nil
}

// parseOperand parses AGE, Birth(attr), attribute references and literals.
func (p *parser) parseOperand() (expr.Expr, error) {
	switch p.cur().kind {
	case tokString:
		t := p.advance()
		return expr.Lit{Val: expr.S(t.text)}, nil
	case tokNumber:
		t := p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return expr.Lit{Val: expr.I(n)}, nil
	case tokIdent:
		id := p.advance()
		if strings.EqualFold(id.text, "AGE") {
			return expr.Age{}, nil
		}
		if strings.EqualFold(id.text, "Birth") && p.at(tokLParen) {
			p.advance()
			attr, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return expr.Birth{Name: attr.text}, nil
		}
		return expr.Col{Name: id.text}, nil
	default:
		return nil, p.errf("expected an operand, got %q", p.cur().text)
	}
}

func (p *parser) parseLiteral() (expr.Value, error) {
	switch p.cur().kind {
	case tokString:
		return expr.S(p.advance().text), nil
	case tokNumber:
		t := p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return expr.Value{}, p.errf("bad number %q", t.text)
		}
		return expr.I(n), nil
	default:
		return expr.Value{}, p.errf("expected a literal, got %q", p.cur().text)
	}
}

func (p *parser) parseLiteralList() ([]expr.Value, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	var list []expr.Value
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		list = append(list, v)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	return list, nil
}

// parseMixed parses WITH alias AS ( cohortQuery ) SELECT ... FROM alias
// [WHERE cond] [ORDER BY col [DESC]] [LIMIT n].
func (p *parser) parseMixed() (*MixedStmt, error) {
	if err := p.expectKeyword("WITH"); err != nil {
		return nil, err
	}
	alias, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	inner, err := p.parseCohort()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	m := &MixedStmt{Alias: alias.text, Inner: inner, Limit: -1}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		m.Cols = append(m.Cols, id.text)
		if !p.at(tokComma) {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(from.text, m.Alias) {
		return nil, fmt.Errorf("parser: outer query must read the cohort sub-query %q, got %q (cohort sub-queries may not reference other tables, Section 3.5)", m.Alias, from.text)
	}
	if p.peekKeyword("WHERE") {
		p.advance()
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		m.Where = cond
	}
	if p.peekKeyword2("ORDER", "BY") {
		p.advance()
		p.advance()
		col, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		m.Order = &OrderBy{Col: col.text}
		if p.peekKeyword("DESC") {
			p.advance()
			m.Order.Desc = true
		} else if p.peekKeyword("ASC") {
			p.advance()
		}
	}
	if p.peekKeyword("LIMIT") {
		p.advance()
		n, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		lim, err := strconv.Atoi(n.text)
		if err != nil || lim < 0 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		m.Limit = lim
	}
	return m, nil
}
