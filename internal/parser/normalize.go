package parser

import "strings"

// Normalize collapses whitespace outside string literals so formatting
// differences (newlines, indentation) map to one canonical query text. It is
// the shared cache-key normalizer: the server's result cache and the
// compiled-plan cache both key on it, so a query reformatted between calls
// still hits. Literal contents are copied verbatim — including backslash
// escapes, matching the lexer — because `country = "US  East"` and
// `country = "US East"` are different queries and must never collide on one
// cache key.
func Normalize(src string) string {
	var sb strings.Builder
	sb.Grow(len(src))
	pendingSpace := false
	for i := 0; i < len(src); {
		c := src[i]
		if asciiSpace(c) {
			if sb.Len() > 0 {
				pendingSpace = true
			}
			i++
			continue
		}
		if pendingSpace {
			sb.WriteByte(' ')
			pendingSpace = false
		}
		if c == '"' || c == '\'' {
			// Copy the literal untouched through its closing quote. An
			// unterminated literal (a parse error either way) copies to
			// the end of the text.
			quote := c
			sb.WriteByte(c)
			i++
			for i < len(src) {
				if src[i] == '\\' && i+1 < len(src) {
					sb.WriteByte(src[i])
					sb.WriteByte(src[i+1])
					i += 2
					continue
				}
				sb.WriteByte(src[i])
				if src[i] == quote {
					i++
					break
				}
				i++
			}
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return sb.String()
}

func asciiSpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '\v', '\f':
		return true
	}
	return false
}
