// Package parser implements the cohort query language of Section 3.4 —
//
//	SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
//	FROM GameActions
//	BIRTH FROM action = "launch" AND role = "dwarf"
//	AGE ACTIVITIES IN action = "shop" AND country = Birth(country)
//	COHORT BY country
//
// — plus the Section 3.5 mixed-query form that wraps a cohort query in a
// plain SQL outer query:
//
//	WITH cohorts AS (SELECT ... COHORT BY country)
//	SELECT cohort, AGE, spent FROM cohorts
//	WHERE cohort IN ["Australia", "China"] ORDER BY AGE LIMIT 10
//
// The parser is schema-free: attribute names are resolved when the query is
// bound to a table by the engine facade.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokComma
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokComma:
		return ","
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokLBracket:
		return "["
	case tokRBracket:
		return "]"
	case tokEq:
		return "="
	case tokNe:
		return "!="
	case tokLt:
		return "<"
	case tokLe:
		return "<="
	case tokGt:
		return ">"
	case tokGe:
		return ">="
	default:
		return fmt.Sprintf("tok(%d)", uint8(k))
	}
}

type token struct {
	kind tokKind
	text string // identifier/keyword text or literal contents
	pos  int    // byte offset for error messages
}

// lex tokenizes the input. Keywords are returned as tokIdent; the parser
// matches them case-insensitively.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokNe, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("parser: unexpected '!' at offset %d", i)
			}
		case c == '<':
			switch {
			case i+1 < len(src) && src[i+1] == '=':
				toks = append(toks, token{tokLe, "<=", i})
				i += 2
			case i+1 < len(src) && src[i+1] == '>':
				toks = append(toks, token{tokNe, "<>", i})
				i += 2
			default:
				toks = append(toks, token{tokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokGe, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", i})
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("parser: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("parser: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
