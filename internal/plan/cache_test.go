package plan

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/activity"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/storage"
)

const cacheTestQuery = `SELECT country, COHORTSIZE, AGE, Sum(gold), UserCount()
	FROM D BIRTH FROM action = "launch" COHORT BY country`

// cacheTestTable seeds a live sharded table with most of a generated
// workload and returns the held-back rows, so tests can append and compact
// without ever colliding with seeded primary keys.
func cacheTestTable(t *testing.T, shards int) (*ingest.Table, []ingest.Row) {
	t.Helper()
	full := gen.Generate(gen.Config{Users: 90, Days: 14, MeanActions: 10, Seed: 29})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	seedRows := activity.NewTable(full.Schema())
	var lateRows []ingest.Row
	for r := 0; r < full.Len(); r++ {
		if r%8 == 5 {
			lateRows = append(lateRows, rowOf(full, r))
		} else {
			seedRows.AppendRow(rowOf(full, r).Strs, rowOf(full, r).Ints)
		}
	}
	if err := seedRows.AssertSortedByPK(); err != nil {
		t.Fatal(err)
	}
	sharded, err := storage.BuildSharded(seedRows, shards, storage.Options{ChunkSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	lt, err := ingest.OpenSharded(sharded, ingest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lt.Close() })
	return lt, lateRows
}

func TestPlanCacheHitMissAndRebind(t *testing.T) {
	lt, late := cacheTestTable(t, 2)
	schema := lt.Schema()
	cache := NewCache(8)

	p1, err := cache.Prepare(cacheTestQuery, schema)
	if err != nil {
		t.Fatal(err)
	}
	// Same query modulo whitespace: must normalize onto the cached plan.
	p2, err := cache.Prepare("  SELECT country,   COHORTSIZE, AGE, Sum(gold), UserCount()\n\tFROM D BIRTH FROM action = \"launch\"   COHORT BY country ", schema)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("whitespace-variant query text compiled a second plan")
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats after one miss + one hit = %+v", st)
	}

	inputs := shardInputsOf(lt.Views())
	want, err := ExecuteShards(parseQuery(t, cacheTestQuery), inputs, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecuteCached(cache, p1, inputs, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "cached execution", got, want)
	rebinds := cache.Stats().Rebinds
	if rebinds == 0 {
		t.Fatal("first execution bound no shards")
	}
	// A repeat execution over unchanged shards re-binds nothing.
	if _, err := ExecuteCached(cache, p1, inputs, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Rebinds; got != rebinds {
		t.Fatalf("repeat execution re-bound %d shards, want 0", got-rebinds)
	}

	// Compaction installs new sealed tiers for the shards that absorbed
	// delta rows; the next execution re-binds exactly those and still
	// matches a from-scratch execution.
	if err := lt.Append(late); err != nil {
		t.Fatal(err)
	}
	if err := lt.Compact(); err != nil {
		t.Fatal(err)
	}
	inputs = shardInputsOf(lt.Views())
	want, err = ExecuteShards(parseQuery(t, cacheTestQuery), inputs, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err = ExecuteCached(cache, p1, inputs, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "post-compaction cached execution", got, want)
	after := cache.Stats()
	if after.Rebinds <= rebinds {
		t.Fatal("compaction did not force any shard re-binding")
	}
	if after.Rebinds > rebinds+uint64(len(inputs)) {
		t.Fatalf("compaction re-bound %d shards, table has %d", after.Rebinds-rebinds, len(inputs))
	}
	// The plan itself stayed cached throughout.
	if p3, err := cache.Prepare(cacheTestQuery, schema); err != nil || p3 != p1 {
		t.Fatalf("plan evicted across compaction: %v", err)
	}
}

func TestPlanCacheEvictionCapacityAndDisabled(t *testing.T) {
	lt, _ := cacheTestTable(t, 1)
	schema := lt.Schema()

	small := NewCache(1)
	if _, err := small.Prepare(cacheTestQuery, schema); err != nil {
		t.Fatal(err)
	}
	other := `SELECT role, COHORTSIZE, AGE, Count() FROM D BIRTH FROM action = "launch" COHORT BY role`
	if _, err := small.Prepare(other, schema); err != nil {
		t.Fatal(err)
	}
	if st := small.Stats(); st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("capacity-1 cache after two plans = %+v", st)
	}

	off := NewCache(-1)
	a, err := off.Prepare(cacheTestQuery, schema)
	if err != nil {
		t.Fatal(err)
	}
	b, err := off.Prepare(cacheTestQuery, schema)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("disabled cache shared a plan")
	}
	if st := off.Stats(); st.Entries != 0 {
		t.Fatalf("disabled cache retained entries: %+v", st)
	}

	if def := NewCache(0); def.Stats().Capacity != DefaultCacheSize {
		t.Fatalf("NewCache(0) capacity = %d, want %d", def.Stats().Capacity, DefaultCacheSize)
	}

	// Reset empties the cache; the next Prepare recompiles.
	small.Reset()
	if st := small.Stats(); st.Entries != 0 {
		t.Fatalf("entries after Reset = %d", st.Entries)
	}

	// Parse errors are returned, never cached.
	if _, err := small.Prepare("SELECT FROM nothing", schema); err == nil {
		t.Fatal("malformed query prepared successfully")
	}
	if st := small.Stats(); st.Entries != 0 {
		t.Fatal("a failed compilation was cached")
	}
}

// TestPlanCacheConcurrentPrepareAndExecute drives shared plans from many
// goroutines while appends and compactions change shard identity under
// them; run under -race this pins the cache's and bindings' locking.
func TestPlanCacheConcurrentPrepareAndExecute(t *testing.T) {
	lt, late := cacheTestTable(t, 2)
	schema := lt.Schema()
	cache := NewCache(8)
	queries := []string{
		cacheTestQuery,
		`SELECT role, COHORTSIZE, AGE, Count() FROM D BIRTH FROM action = "launch" COHORT BY role`,
		`SELECT country, COHORTSIZE, AGE, Avg(session) FROM D BIRTH FROM action = "shop" AGE ACTIVITIES IN AGE < 7 COHORT BY country`,
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				src := queries[(g+i)%len(queries)]
				p, err := cache.Prepare(src, schema)
				if err != nil {
					errc <- err
					return
				}
				if _, err := ExecuteCached(cache, p, shardInputsOf(lt.Views()), ExecOptions{}); err != nil {
					errc <- fmt.Errorf("execute %q: %w", src, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			n := len(late) / 3
			if err := lt.Append(late[i*n : (i+1)*n]); err != nil {
				errc <- err
				return
			}
			if err := lt.Compact(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != uint64(len(queries)) || st.Hits == 0 {
		t.Fatalf("concurrent stats = %+v, want exactly %d misses and some hits", st, len(queries))
	}
}
