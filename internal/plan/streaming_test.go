package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/storage"
)

// The streaming/pushdown equivalence contract: the default execution mode —
// per-chunk partials streamed into the shard accumulator, with predicates
// evaluated on encoded ids — must be bit-identical to the materializing,
// decode-everything reference path for ANY query, shard count, and ingest
// state. The property test draws random queries from the full clause space
// and checks shard counts {1, 2, 4}, sealed-only and mid-ingest (delta rows
// riding the union path), with and without a shared worker pool.
func TestStreamingPushdownMatchesMaterializedProperty(t *testing.T) {
	full := gen.Generate(gen.Config{Users: 110, Days: 16, MeanActions: 12, Seed: 41, ZipfS: 1.3})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	schema := full.Schema()

	seedRows := activity.NewTable(schema)
	var lateRows []ingest.Row
	for r := 0; r < full.Len(); r++ {
		if r%5 == 2 {
			lateRows = append(lateRows, rowOf(full, r))
		} else {
			seedRows.AppendRow(rowOf(full, r).Strs, rowOf(full, r).Ints)
		}
	}
	if err := seedRows.AssertSortedByPK(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	sources := make([]string, 0, 20)
	queries := make([]*cohort.Query, 0, 20)
	for len(queries) < 20 {
		src := randomQuery(rng)
		queries = append(queries, parseQuery(t, src))
		sources = append(sources, src)
	}

	// The reference mode: materialized per-chunk results, no pushdown — the
	// original decode-every-row execution strategy.
	refOpts := ExecOptions{Parallelism: -1, Materialize: true, DisablePushdown: true}

	pool := cohort.NewPool(3)
	defer pool.Close()
	for _, shards := range []int{1, 2, 4} {
		sharded, err := storage.BuildSharded(full, shards, storage.Options{ChunkSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]ShardInput, sharded.NumShards())
		for i := range inputs {
			inputs[i] = ShardInput{Sealed: sharded.Shard(i)}
		}
		seedSharded, err := storage.BuildSharded(seedRows, shards, storage.Options{ChunkSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		lt, err := ingest.OpenSharded(seedSharded, ingest.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := lt.Append(lateRows); err != nil {
			t.Fatal(err)
		}
		liveInputs := shardInputsOf(lt.Views())

		for qi, q := range queries {
			label := fmt.Sprintf("shards=%d query=%q", shards, sources[qi])
			want, err := ExecuteShards(q, inputs, refOpts)
			if err != nil {
				t.Fatalf("%s reference: %v", label, err)
			}
			got, err := ExecuteShards(q, inputs, ExecOptions{Parallelism: -1})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireBitEqual(t, label+" [sealed,streaming+pushdown]", got, want)
			got, err = ExecuteShards(q, inputs, ExecOptions{Parallelism: -1, Pool: pool})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireBitEqual(t, label+" [sealed,pool]", got, want)

			liveWant, err := ExecuteShards(q, liveInputs, refOpts)
			if err != nil {
				t.Fatalf("%s live reference: %v", label, err)
			}
			liveGot, err := ExecuteShards(q, liveInputs, ExecOptions{Parallelism: -1})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireBitEqual(t, label+" [mid-ingest,streaming+pushdown]", liveGot, liveWant)
		}
		if err := lt.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPushdownDecodesFewerBytes pins the point of decoder-level predicates:
// a selective birth filter over encoded columns must decode strictly fewer
// value bytes than the decode-then-filter path, while scanning the same rows.
func TestPushdownDecodesFewerBytes(t *testing.T) {
	full := gen.Generate(gen.Config{Users: 100, Days: 14, MeanActions: 12, Seed: 13})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	sealed, err := storage.Build(full, storage.Options{ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	q := parseQuery(t, `SELECT country, COHORTSIZE, AGE, Sum(gold)
		FROM D BIRTH FROM action = "launch" AND country = "China"
		AGE ACTIVITIES IN action = "shop" AND gold > 5
		COHORT BY country`)
	inputs := []ShardInput{{Sealed: sealed}}

	var with, without cohort.ExecStats
	want, err := ExecuteShards(q, inputs, ExecOptions{DisablePushdown: true, Stats: &without})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecuteShards(q, inputs, ExecOptions{Stats: &with})
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "pushdown vs decode-then-filter", got, want)
	if with.RowsScanned.Load() != without.RowsScanned.Load() {
		t.Fatalf("rows scanned differ: pushdown %d, reference %d",
			with.RowsScanned.Load(), without.RowsScanned.Load())
	}
	if w, wo := with.ValueBytesDecoded.Load(), without.ValueBytesDecoded.Load(); w >= wo {
		t.Fatalf("pushdown decoded %d value bytes, reference %d — want strictly fewer", w, wo)
	}
	if with.EncodedChecks.Load() == 0 {
		t.Fatal("pushdown path reports zero encoded-domain checks")
	}
}
