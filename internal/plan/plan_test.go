package plan

import (
	"strings"
	"testing"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/expr"
	"repro/internal/storage"
)

func paperStore(t *testing.T, chunkSize int) *storage.Table {
	t.Helper()
	st, err := storage.Build(activity.PaperTable1(), storage.Options{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func exampleQuery() *cohort.Query {
	return &cohort.Query{
		BirthAction: "launch",
		BirthCond:   expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "role"}, R: expr.Lit{Val: expr.S("dwarf")}},
		AgeCond:     expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
		CohortBy:    []cohort.CohortKey{{Col: "country"}},
		Aggs:        []cohort.AggSpec{{Func: cohort.Sum, Col: "gold", As: "spent"}},
	}
}

// TestOptimizePushdown checks Equation 1: birth selections move below age
// selections regardless of the written order, and same-kind selections fuse.
func TestOptimizePushdown(t *testing.T) {
	q := exampleQuery()
	p := FromQuery(q)
	// FromQuery mirrors the clause order: age select below birth select.
	if _, ok := p[1].(AgeSelect); !ok {
		t.Fatalf("plan[1] = %T, want AgeSelect", p[1])
	}
	opt, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) != 4 {
		t.Fatalf("optimized length %d", len(opt))
	}
	if _, ok := opt[1].(BirthSelect); !ok {
		t.Errorf("optimized[1] = %T, want BirthSelect (push-down)", opt[1])
	}
	if _, ok := opt[2].(AgeSelect); !ok {
		t.Errorf("optimized[2] = %T, want AgeSelect", opt[2])
	}
}

func TestOptimizeFusesSelections(t *testing.T) {
	c1 := expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "role"}, R: expr.Lit{Val: expr.S("dwarf")}}
	c2 := expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "country"}, R: expr.Lit{Val: expr.S("Australia")}}
	p := Plan{
		Scan{},
		BirthSelect{Cond: c1},
		AgeSelect{Cond: expr.Cmp{Op: expr.OpLt, L: expr.Age{}, R: expr.Lit{Val: expr.I(5)}}},
		BirthSelect{Cond: c2},
		CohortAgg{CohortBy: []cohort.CohortKey{{Col: "country"}}, Aggs: []cohort.AggSpec{{Func: cohort.Count}}},
	}
	opt, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt) != 4 {
		t.Fatalf("optimized = %d ops, want 4 (fused)", len(opt))
	}
	bs := opt[1].(BirthSelect)
	if !strings.Contains(bs.Cond.String(), "dwarf") || !strings.Contains(bs.Cond.String(), "Australia") {
		t.Errorf("fused birth cond = %s", bs.Cond)
	}
}

func TestOptimizeRejectsMalformedPlans(t *testing.T) {
	agg := CohortAgg{CohortBy: []cohort.CohortKey{{Col: "country"}}, Aggs: []cohort.AggSpec{{Func: cohort.Count}}}
	cases := []Plan{
		{},
		{Scan{}},
		{agg, Scan{}},         // wrong order
		{Scan{}, Scan{}, agg}, // scan in the middle
		{Scan{}, agg, agg},    // agg in the middle
	}
	for i, p := range cases {
		if _, err := Optimize(p); err == nil {
			t.Errorf("malformed plan %d accepted", i)
		}
	}
}

func TestDescribe(t *testing.T) {
	p := FromQuery(exampleQuery())
	opt, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	d := Describe(opt)
	// Figure 5 shape: aggregation on top, then age select, then birth
	// select, then scan.
	wantOrder := []string{"CohortAgg", "AgeSelect", "BirthSelect", "TableScan"}
	pos := -1
	for _, w := range wantOrder {
		p := strings.Index(d, w)
		if p < 0 {
			t.Fatalf("Describe missing %s:\n%s", w, d)
		}
		if p < pos {
			t.Fatalf("Describe order wrong:\n%s", d)
		}
		pos = p
	}
	// Note: Describe prints bottom-up plans top-down, so BirthSelect
	// appears *below* AgeSelect in the rendered tree, matching Figure 5.
}

func TestExecuteExample1(t *testing.T) {
	for _, par := range []int{0, 4, -1} {
		tbl := paperStore(t, 3)
		res, err := Execute(exampleQuery(), tbl, ExecOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("parallelism %d: rows=%d\n%s", par, len(res.Rows), res)
		}
		wantGold := map[int64]float64{1: 50, 2: 100, 3: 50}
		for _, r := range res.Rows {
			if r.Cohort[0] != "Australia" || r.Size != 1 || r.Aggs[0] != wantGold[r.Age] {
				t.Errorf("parallelism %d: row %+v", par, r)
			}
		}
	}
}

func TestExecuteWithPruningDisabledMatches(t *testing.T) {
	tbl := paperStore(t, 2)
	q := exampleQuery()
	a, err := Execute(q, tbl, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(q, tbl, ExecOptions{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Diff(b); d != "" {
		t.Errorf("pruning changed results: %s", d)
	}
}

func TestExecuteAbsentBirthAction(t *testing.T) {
	tbl := paperStore(t, 1024)
	q := exampleQuery()
	q.BirthAction = "teleport"
	res, err := Execute(q, tbl, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("absent birth action produced rows:\n%s", res)
	}
}

func TestExecuteInvalidQuery(t *testing.T) {
	tbl := paperStore(t, 1024)
	q := exampleQuery()
	q.CohortBy = nil
	if _, err := Execute(q, tbl, ExecOptions{}); err == nil {
		t.Error("invalid query executed")
	}
}

func TestPrunedChunks(t *testing.T) {
	tbl := paperStore(t, 3)
	q := &cohort.Query{
		BirthAction: "shop",
		CohortBy:    []cohort.CohortKey{{Col: "country"}},
		Aggs:        []cohort.AggSpec{{Func: cohort.Count}},
	}
	n, err := PrunedChunks(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // player 003 never shopped
		t.Errorf("pruned %d chunks, want 1", n)
	}
}
