package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/storage"
)

// The vectorized-execution equivalence contract: the run-aware kernel path
// (the default) must be bit-identical to the scalar row-at-a-time loop for
// ANY query, shard count and ingest state. The property test draws random
// queries from the full clause space and checks shard counts {1, 2, 4},
// sealed-only and mid-ingest (delta rows riding the scalar union row path
// alongside vectorized sealed chunks), vectorized against DisableVectorized.
func TestVectorizedMatchesScalarProperty(t *testing.T) {
	full := gen.Generate(gen.Config{Users: 110, Days: 16, MeanActions: 12, Seed: 53, ZipfS: 1.2})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	schema := full.Schema()

	seedRows := activity.NewTable(schema)
	var lateRows []ingest.Row
	for r := 0; r < full.Len(); r++ {
		if r%5 == 2 {
			lateRows = append(lateRows, rowOf(full, r))
		} else {
			seedRows.AppendRow(rowOf(full, r).Strs, rowOf(full, r).Ints)
		}
	}
	if err := seedRows.AssertSortedByPK(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(29))
	sources := make([]string, 0, 20)
	queries := make([]*cohort.Query, 0, 20)
	for len(queries) < 20 {
		src := randomQuery(rng)
		queries = append(queries, parseQuery(t, src))
		sources = append(sources, src)
	}

	// The reference mode: scalar row-at-a-time execution, pushdown still on —
	// isolating exactly the vectorization axis.
	scalarOpts := ExecOptions{Parallelism: -1, DisableVectorized: true}

	for _, shards := range []int{1, 2, 4} {
		sharded, err := storage.BuildSharded(full, shards, storage.Options{ChunkSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]ShardInput, sharded.NumShards())
		for i := range inputs {
			inputs[i] = ShardInput{Sealed: sharded.Shard(i)}
		}
		seedSharded, err := storage.BuildSharded(seedRows, shards, storage.Options{ChunkSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		lt, err := ingest.OpenSharded(seedSharded, ingest.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := lt.Append(lateRows); err != nil {
			t.Fatal(err)
		}
		liveInputs := shardInputsOf(lt.Views())

		for qi, q := range queries {
			label := fmt.Sprintf("shards=%d query=%q", shards, sources[qi])
			want, err := ExecuteShards(q, inputs, scalarOpts)
			if err != nil {
				t.Fatalf("%s scalar: %v", label, err)
			}
			got, err := ExecuteShards(q, inputs, ExecOptions{Parallelism: -1})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireBitEqual(t, label+" [sealed,vectorized]", got, want)

			liveWant, err := ExecuteShards(q, liveInputs, scalarOpts)
			if err != nil {
				t.Fatalf("%s live scalar: %v", label, err)
			}
			liveGot, err := ExecuteShards(q, liveInputs, ExecOptions{Parallelism: -1})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireBitEqual(t, label+" [mid-ingest,vectorized]", liveGot, liveWant)
		}
		if err := lt.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVectorizedEngagesByDefault pins the wiring: a default execution reports
// run-kernel activity (RowsBatched equals RowsScanned — every scanned sealed
// row went through the batched path), DisableVectorized reports none, and
// both scan the same rows.
func TestVectorizedEngagesByDefault(t *testing.T) {
	full := gen.Generate(gen.Config{Users: 100, Days: 14, MeanActions: 12, Seed: 13})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	sealed, err := storage.Build(full, storage.Options{ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	q := parseQuery(t, `SELECT country, COHORTSIZE, AGE, Sum(gold)
		FROM D BIRTH FROM action = "launch" AND country = "China"
		AGE ACTIVITIES IN action = "shop" AND gold > 5
		COHORT BY country`)
	inputs := []ShardInput{{Sealed: sealed}}

	var vec, scalar cohort.ExecStats
	want, err := ExecuteShards(q, inputs, ExecOptions{DisableVectorized: true, Stats: &scalar})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecuteShards(q, inputs, ExecOptions{Stats: &vec})
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "vectorized vs scalar", got, want)
	if vec.RowsBatched.Load() == 0 || vec.RunsEvaluated.Load() == 0 {
		t.Fatalf("default execution reports no kernel activity: batched=%d runs=%d",
			vec.RowsBatched.Load(), vec.RunsEvaluated.Load())
	}
	if vec.RowsBatched.Load() != vec.RowsScanned.Load() {
		t.Fatalf("batched %d rows but scanned %d — sealed scans should be fully batched",
			vec.RowsBatched.Load(), vec.RowsScanned.Load())
	}
	if scalar.RowsBatched.Load() != 0 || scalar.RunsEvaluated.Load() != 0 {
		t.Fatalf("scalar execution reports kernel activity: batched=%d runs=%d",
			scalar.RowsBatched.Load(), scalar.RunsEvaluated.Load())
	}
	if vec.RowsScanned.Load() != scalar.RowsScanned.Load() {
		t.Fatalf("rows scanned differ: vectorized %d, scalar %d",
			vec.RowsScanned.Load(), scalar.RowsScanned.Load())
	}
}
