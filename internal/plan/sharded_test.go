package plan

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/storage"
)

// The sharding equivalence contract: for ANY query and ANY shard count, the
// scatter-gather execution over a user-hash-partitioned table must return
// results bit-identical to the same query over the unsharded table — sealed
// tiers alone, and mid-ingest with per-shard deltas riding the union path.
// The property test below draws random queries from the full clause space
// (birth actions that may not exist, birth/age conditions over strings,
// integers, times and Birth() references, one- and two-attribute cohorts,
// time bins, every aggregate) and checks shard counts {1, 2, 4, 7} against
// the single-table reference.

// randomQuery assembles one random cohort query string.
func randomQuery(rng *rand.Rand) string {
	pick := func(opts ...string) string { return opts[rng.Intn(len(opts))] }
	birth := pick("launch", "launch", "shop", "achievement", "no-such-action")
	birthCond := pick(
		``,
		` AND role = "dwarf"`,
		` AND country = "China"`,
		` AND country IN ["China", "Japan", "Atlantis"]`,
		` AND time BETWEEN "2013-05-21" AND "2013-06-01"`,
		` AND session >= 20`,
	)
	ageCond := pick(
		``,
		` AGE ACTIVITIES IN action = "shop"`,
		` AGE ACTIVITIES IN AGE < 7`,
		` AGE ACTIVITIES IN country = Birth(country)`,
		` AGE ACTIVITIES IN gold > 5 AND action = "shop"`,
	)
	cohortBy := pick(
		`country`, `role`, `city`,
		`time(week)`, `time(day)`,
		`country, role`, `role, time(month)`,
	)
	aggPool := []string{`Sum(gold)`, `Count()`, `Avg(session)`, `Min(gold)`, `Max(session)`, `UserCount()`}
	rng.Shuffle(len(aggPool), func(i, j int) { aggPool[i], aggPool[j] = aggPool[j], aggPool[i] })
	aggs := strings.Join(aggPool[:1+rng.Intn(3)], ", ")
	keyCols := cohortBy
	if i := strings.IndexByte(keyCols, '('); i >= 0 {
		// time(week) is selected as "time" in the SELECT list.
		keyCols = strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(keyCols, "(week)", ""), "(day)", ""), "(month)", "")
	}
	return fmt.Sprintf(`SELECT %s, COHORTSIZE, AGE, %s FROM D BIRTH FROM action = %q%s%s COHORT BY %s`,
		keyCols, aggs, birth, ageCond, birthCond, cohortBy)
}

// requireBitEqual fails unless two results are bit-identical, including the
// float64 bit patterns of every aggregate.
func requireBitEqual(t *testing.T, label string, got, want *cohort.Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) ||
		strings.Join(got.KeyCols, "\x00") != strings.Join(want.KeyCols, "\x00") ||
		strings.Join(got.AggNames, "\x00") != strings.Join(want.AggNames, "\x00") {
		t.Fatalf("%s: result shape differs:\n%s", label, got.Diff(want))
	}
	for i, g := range got.Rows {
		w := want.Rows[i]
		if strings.Join(g.Cohort, "\x00") != strings.Join(w.Cohort, "\x00") || g.Age != w.Age || g.Size != w.Size {
			t.Fatalf("%s: row %d differs:\n%s", label, i, got.Diff(want))
		}
		for k := range g.Aggs {
			if math.Float64bits(g.Aggs[k]) != math.Float64bits(w.Aggs[k]) {
				t.Fatalf("%s: row %d agg %d not bit-identical: %v vs %v", label, i, k, g.Aggs[k], w.Aggs[k])
			}
		}
	}
}

// rowOf extracts row r of src as a full-width ingest row.
func rowOf(src *activity.Table, r int) ingest.Row {
	schema := src.Schema()
	row := ingest.Row{Strs: make([]string, schema.NumCols()), Ints: make([]int64, schema.NumCols())}
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			row.Strs[c] = src.Strings(c)[r]
		} else {
			row.Ints[c] = src.Ints(c)[r]
		}
	}
	return row
}

func shardInputsOf(views []ingest.View) []ShardInput {
	out := make([]ShardInput, len(views))
	for i, v := range views {
		out[i] = ShardInput{Sealed: v.Sealed, Delta: v.Delta, Union: v.Union}
	}
	return out
}

func TestShardedExecutionMatchesSingleTableProperty(t *testing.T) {
	// A zipf-skewed workload, so shards are genuinely imbalanced: hash
	// partitioning spreads users evenly but a heavy tail of power users
	// concentrates tuples.
	full := gen.Generate(gen.Config{Users: 120, Days: 18, MeanActions: 12, Seed: 11, ZipfS: 1.4})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	schema := full.Schema()

	// Mid-ingest split: ~1 in 6 rows arrive late as appends, keyed on the
	// row index so existing users gain delta tuples on top of sealed blocks
	// (the union overlap path) while others exist only in the delta.
	seedRows := activity.NewTable(schema)
	var lateRows []ingest.Row
	for r := 0; r < full.Len(); r++ {
		if r%6 == 3 {
			lateRows = append(lateRows, rowOf(full, r))
		} else {
			seedRows.AppendRow(rowOf(full, r).Strs, rowOf(full, r).Ints)
		}
	}
	if err := seedRows.AssertSortedByPK(); err != nil {
		t.Fatal(err)
	}

	refSealed, err := storage.Build(full, storage.Options{ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	queries := make([]*cohort.Query, 0, 24)
	sources := make([]string, 0, 24)
	for len(queries) < 24 {
		src := randomQuery(rng)
		queries = append(queries, parseQuery(t, src))
		sources = append(sources, src)
	}
	wants := make([]*cohort.Result, len(queries))
	for i, q := range queries {
		if wants[i], err = Execute(q, refSealed, ExecOptions{Parallelism: -1}); err != nil {
			t.Fatalf("reference for %q: %v", sources[i], err)
		}
	}

	pool := cohort.NewPool(3)
	defer pool.Close()
	for _, shards := range []int{1, 2, 4, 7} {
		// Sealed-only equivalence over the whole table.
		sharded, err := storage.BuildSharded(full, shards, storage.Options{ChunkSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		if sharded.NumRows() != full.Len() || sharded.NumUsers() != refSealed.NumUsers() {
			t.Fatalf("%d-shard build lost rows: %d rows / %d users", shards, sharded.NumRows(), sharded.NumUsers())
		}
		inputs := make([]ShardInput, sharded.NumShards())
		for i := range inputs {
			inputs[i] = ShardInput{Sealed: sharded.Shard(i)}
		}
		// Mid-ingest equivalence: a live table seeded with the early rows,
		// the late rows appended (routed to their owning shards' deltas).
		seedSharded, err := storage.BuildSharded(seedRows, shards, storage.Options{ChunkSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		lt, err := ingest.OpenSharded(seedSharded, ingest.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := lt.Append(lateRows); err != nil {
			t.Fatal(err)
		}
		liveInputs := shardInputsOf(lt.Views())

		for qi, q := range queries {
			label := fmt.Sprintf("shards=%d query=%q", shards, sources[qi])
			got, err := ExecuteShards(q, inputs, ExecOptions{Parallelism: -1})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireBitEqual(t, label+" [sealed]", got, wants[qi])
			got, err = ExecuteShards(q, inputs, ExecOptions{Parallelism: -1, Pool: pool})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireBitEqual(t, label+" [sealed,pool]", got, wants[qi])
			got, err = ExecuteShards(q, liveInputs, ExecOptions{Parallelism: -1})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireBitEqual(t, label+" [mid-ingest]", got, wants[qi])
		}
		if err := lt.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedCompactionPreservesEquivalence drives the live path end to end:
// appends into a sharded table, per-shard compaction, and equivalence with
// the single-table reference before and after sealing.
func TestShardedCompactionPreservesEquivalence(t *testing.T) {
	full := gen.Generate(gen.Config{Users: 80, Days: 14, MeanActions: 10, Seed: 23})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	schema := full.Schema()
	seedRows := activity.NewTable(schema)
	var lateRows []ingest.Row
	for r := 0; r < full.Len(); r++ {
		if r%4 == 1 {
			lateRows = append(lateRows, rowOf(full, r))
		} else {
			seedRows.AppendRow(rowOf(full, r).Strs, rowOf(full, r).Ints)
		}
	}
	if err := seedRows.AssertSortedByPK(); err != nil {
		t.Fatal(err)
	}
	refSealed, err := storage.Build(full, storage.Options{ChunkSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	q := parseQuery(t, `SELECT country, COHORTSIZE, AGE, Sum(gold), UserCount()
		FROM D BIRTH FROM action = "launch" COHORT BY country`)
	want, err := Execute(q, refSealed, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 7} {
		seedSharded, err := storage.BuildSharded(seedRows, shards, storage.Options{ChunkSize: 150})
		if err != nil {
			t.Fatal(err)
		}
		lt, err := ingest.OpenSharded(seedSharded, ingest.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := lt.Append(lateRows); err != nil {
			t.Fatal(err)
		}
		got, err := ExecuteShards(q, shardInputsOf(lt.Views()), ExecOptions{Parallelism: -1})
		if err != nil {
			t.Fatal(err)
		}
		requireBitEqual(t, fmt.Sprintf("shards=%d pre-compaction", shards), got, want)
		if err := lt.Compact(); err != nil {
			t.Fatal(err)
		}
		if lt.DeltaRows() != 0 {
			t.Fatalf("shards=%d: %d delta rows survive compaction", shards, lt.DeltaRows())
		}
		got, err = ExecuteShards(q, shardInputsOf(lt.Views()), ExecOptions{Parallelism: -1})
		if err != nil {
			t.Fatal(err)
		}
		requireBitEqual(t, fmt.Sprintf("shards=%d post-compaction", shards), got, want)
		if err := lt.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
