package plan

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/storage"
)

// Cache is a bounded LRU of compiled query plans, keyed by the normalized
// query text (parser.Normalize — the same normalizer the result cache keys
// on, so the two caches agree on which texts are "the same query"). One
// Cache serves one table: the catalog creates a fresh Cache per loaded
// table incarnation, so a reload invalidates every plan wholesale, while
// compaction invalidates nothing here — each CachedPlan re-binds only the
// shards whose sealed tier actually changed (pointer identity, see
// CompiledFor).
//
// A hit skips parse → validate → optimize → compile entirely; a repeat
// query's cost collapses to binding lookups plus execution, which is what
// the repeat-query benchmark gates on.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	rebinds   uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	plan *CachedPlan
}

// DefaultCacheSize is the plan capacity used when a caller passes 0.
const DefaultCacheSize = 256

// NewCache holds at most capacity plans; 0 selects DefaultCacheSize and
// negative disables caching (every Prepare compiles fresh).
func NewCache(capacity int) *Cache {
	if capacity == 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Prepare returns the compiled plan for src, reusing a cached one when the
// normalized text matches. The returned plan is shared and safe for
// concurrent ExecuteCached calls. Parse and validation errors are returned
// as-is (never cached).
func (c *Cache) Prepare(src string, schema *activity.Schema) (*CachedPlan, error) {
	p, _, err := c.PrepareInfo(src, schema)
	return p, err
}

// PrepareInfo is Prepare additionally reporting whether the plan came from
// the cache, so traced executions can annotate the prepare phase.
func (c *Cache) PrepareInfo(src string, schema *activity.Schema) (*CachedPlan, bool, error) {
	norm := parser.Normalize(src)
	if p := c.lookup(norm); p != nil {
		return p, true, nil
	}
	p, err := compilePlan(src, schema)
	if err != nil {
		return nil, false, err
	}
	c.store(norm, p)
	return p, false, nil
}

func (c *Cache) lookup(norm string) *CachedPlan {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[norm]
	if !ok {
		c.misses++
		obs.PlanCacheMissesTotal.Inc()
		return nil
	}
	c.hits++
	obs.PlanCacheHitsTotal.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).plan
}

func (c *Cache) store(norm string, p *CachedPlan) {
	if c == nil || c.capacity < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[norm]; ok {
		// A concurrent Prepare raced us; keep the incumbent (callers already
		// hold p and may use it — both are valid compilations).
		c.ll.MoveToFront(el)
		return
	}
	c.items[norm] = c.ll.PushFront(&cacheEntry{key: norm, plan: p})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *Cache) noteRebinds(n uint64) {
	if n == 0 {
		return
	}
	obs.PlanCacheRebindsTotal.Add(int64(n))
	if c == nil {
		return
	}
	c.mu.Lock()
	c.rebinds += n
	c.mu.Unlock()
}

// Reset drops every cached plan, for explicit invalidation when the whole
// table is replaced under a cache that must keep its identity.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// CacheStats is a point-in-time snapshot of plan-cache effectiveness.
// Rebinds counts per-shard recompilations forced by a changed sealed tier
// (compaction) on otherwise-hit plans.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Rebinds   uint64 `json:"rebinds"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the counters. Safe on a nil cache (all zeros).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.capacity,
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Rebinds:   c.rebinds,
		Evictions: c.evictions,
	}
}

// CachedPlan is the reusable compiled form of one query text: the parsed
// statement, the optimized cohort query, and lazily-built per-shard
// bindings. The front sections (Stmt, Query, schema) are immutable after
// construction; bindings are guarded by mu and tagged with the sealed
// table pointer they were compiled against, so a shard compaction — which
// installs a new *storage.Table — invalidates exactly that shard's binding
// and nothing else.
type CachedPlan struct {
	// Stmt is the parsed statement; Stmt.Mixed is non-nil for mixed
	// (WITH-prefixed) queries, whose outer SQL the caller evaluates over
	// the inner cohort result.
	Stmt *parser.Stmt
	// Query is the optimized inner cohort query all bindings compile from.
	Query  *cohort.Query
	schema *activity.Schema

	mu       sync.Mutex
	rows     *cohort.RowQuery
	bindings []shardBinding
}

type shardBinding struct {
	sealed   *storage.Table // identity tag: which sealed tier this binds
	compiled *cohort.Compiled
}

// compilePlan runs the full front half — parse, validate, optimize — once.
func compilePlan(src string, schema *activity.Schema) (*CachedPlan, error) {
	stmt, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	cs := stmt.Cohort
	if stmt.Mixed != nil {
		cs = stmt.Mixed.Inner
	}
	q := cs.Query
	if err := q.Validate(schema); err != nil {
		return nil, err
	}
	optimized, err := ToQuery(FromQuery(q), q.BirthAction, q.AgeUnit)
	if err != nil {
		return nil, err
	}
	return &CachedPlan{Stmt: stmt, Query: optimized, schema: schema}, nil
}

// CompiledFor returns the shard-i binding against sealed, recompiling only
// when the shard's sealed tier changed identity since the last execution
// (or was never bound). The second result reports whether a recompile
// happened, feeding the cache's Rebinds counter.
func (p *CachedPlan) CompiledFor(i int, sealed *storage.Table) (*cohort.Compiled, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.bindings) <= i {
		p.bindings = append(p.bindings, shardBinding{})
	}
	b := &p.bindings[i]
	if b.compiled != nil && b.sealed == sealed {
		return b.compiled, false, nil
	}
	compiled, err := cohort.Compile(p.Query, sealed)
	if err != nil {
		return nil, false, err
	}
	b.sealed, b.compiled = sealed, compiled
	return compiled, true, nil
}

// RowsFor returns the plan's row-scan twin, compiling it on first use. The
// row query binds against the schema only, so it never needs rebinding.
func (p *CachedPlan) RowsFor() (*cohort.RowQuery, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rows != nil {
		return p.rows, nil
	}
	rows, err := cohort.CompileRows(p.Query, p.schema)
	if err != nil {
		return nil, err
	}
	p.rows = rows
	return rows, nil
}

// ExecuteCached executes a cached plan over the shards, re-binding only
// shards whose sealed tier changed. cache may be nil (rebinds go uncounted).
func ExecuteCached(cache *Cache, p *CachedPlan, shards []ShardInput, opts ExecOptions) (*cohort.Result, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("plan: no shards to execute over")
	}
	sp := opts.Trace.Child("bind")
	var rows *cohort.RowQuery
	var err error
	if shardsHaveDelta(shards) {
		if rows, err = p.RowsFor(); err != nil {
			return nil, err
		}
	}
	compiled := make([]*cohort.Compiled, len(shards))
	var rebinds uint64
	for i, sh := range shards {
		c, rebound, err := p.CompiledFor(i, sh.Sealed)
		if err != nil {
			return nil, err
		}
		if rebound {
			rebinds++
		}
		compiled[i] = c
	}
	cache.noteRebinds(rebinds)
	sp.End()
	sp.SetInt("shards", int64(len(shards)))
	sp.SetInt("rebinds", int64(rebinds))
	return executeCompiled(p.Query, compiled, rows, shards, opts)
}
