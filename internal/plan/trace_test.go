package plan

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/cohort"
	"repro/internal/obs"
)

// TestTracedQueryConcurrentRace hammers a traced query from many goroutines
// over a shared plan cache, shared worker pool and per-query shared ExecStats
// — the satellite audit that per-chunk tasks folding into one stats struct
// and one span tree are race-free under `go test -race`. Each run also
// cross-checks the trace's aggregated counters against its own ExecStats:
// the two are folded from the same per-chunk tallies, so any lost update
// shows up as a mismatch even without the race detector.
func TestTracedQueryConcurrentRace(t *testing.T) {
	lt, late := cacheTestTable(t, 2)
	// Leave the late rows in the delta tier so the union path (chunk scan +
	// concurrent delta row scan) is part of what the race test exercises.
	if err := lt.Append(late); err != nil {
		t.Fatal(err)
	}
	cache := NewCache(8)
	p, err := cache.Prepare(cacheTestQuery, lt.Schema())
	if err != nil {
		t.Fatal(err)
	}
	pool := cohort.NewPool(4)
	defer pool.Close()
	inputs := shardInputsOf(lt.Views())

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 4; it++ {
				root := obs.NewSpan("query")
				var stats cohort.ExecStats
				res, err := ExecuteCached(cache, p, inputs, ExecOptions{
					Parallelism: -1,
					Pool:        pool,
					Stats:       &stats,
					Trace:       root,
				})
				if err != nil {
					t.Error(err)
					return
				}
				root.End()
				if len(res.Rows) == 0 {
					t.Error("traced query returned no rows")
					return
				}
				var rows, bytes, checks, chunks int64
				nShards := 0
				for _, sh := range root.Children {
					if !strings.HasPrefix(sh.Name, "shard ") {
						continue
					}
					nShards++
					rows += sh.Int("rows_scanned")
					bytes += sh.Int("value_bytes_decoded")
					checks += sh.Int("encoded_checks")
					chunks += sh.Int("chunks_scanned")
				}
				if nShards != len(inputs) {
					t.Errorf("trace has %d shard spans, want %d", nShards, len(inputs))
				}
				if rows != stats.RowsScanned.Load() ||
					bytes != stats.ValueBytesDecoded.Load() ||
					checks != stats.EncodedChecks.Load() ||
					chunks != stats.ChunksScanned.Load() {
					t.Errorf("trace aggregates (rows=%d bytes=%d checks=%d chunks=%d) != ExecStats (rows=%d bytes=%d checks=%d chunks=%d)",
						rows, bytes, checks, chunks,
						stats.RowsScanned.Load(), stats.ValueBytesDecoded.Load(),
						stats.EncodedChecks.Load(), stats.ChunksScanned.Load())
				}
			}
		}()
	}
	wg.Wait()
}
