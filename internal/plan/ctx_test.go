package plan

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/storage"
)

// TestExecuteHonorsContextCancellation pins the cancellation satellite: a
// done context must surface as the context's error, never as a partial
// result — a disconnected client's scatter-gather fan-out stops instead of
// scanning to completion.
func TestExecuteHonorsContextCancellation(t *testing.T) {
	full := gen.Generate(gen.Config{Users: 60, Days: 12, MeanActions: 10, Seed: 13})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	sharded, err := storage.BuildSharded(full, 4, storage.Options{ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]ShardInput, sharded.NumShards())
	for i := range inputs {
		inputs[i] = ShardInput{Sealed: sharded.Shard(i)}
	}
	q := parseQuery(t, `SELECT country, COHORTSIZE, AGE, UserCount()
		FROM D BIRTH FROM action = "launch" COHORT BY country`)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already disconnected before execution starts
	for _, parallelism := range []int{0, -1} {
		if _, err := ExecuteShards(q, inputs, ExecOptions{Parallelism: parallelism, Ctx: ctx}); !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism=%d: cancelled execution returned %v, want context.Canceled", parallelism, err)
		}
	}
	// A live context changes nothing.
	res, err := ExecuteShards(q, inputs, ExecOptions{Parallelism: -1, Ctx: context.Background()})
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("live context: res=%v err=%v", res, err)
	}
	single, err := storage.Build(full, storage.Options{ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Execute(q, single, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Fatalf("context-carrying execution changed the result:\n%s", res.Diff(want))
	}
}
