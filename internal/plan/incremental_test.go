package plan

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/storage"
)

// The chunk-granular compaction + incremental persistence contract (the
// ISSUE 4 tentpole pin): compacting a delta by re-encoding only the touched
// chunks and persisting only the new segments must yield query results — and
// reloaded on-disk state — bit-identical to a whole-shard/whole-table
// rebuild over the same rows, across shard counts {1, 2, 4} and both delta
// skews. And the persisted bytes must track the touched chunks: a hot-user
// (zipf) delta writes strictly fewer bytes than a uniform delta of equal row
// count.

// deltaRowsFor fabricates n delta rows cycling over users, with timestamps
// far above anything the generator emits (no sealed PK collisions) and a
// country value the generator never produces, so compaction must grow the
// global dictionaries and remap untouched chunks.
func deltaRowsFor(t *testing.T, schema *activity.Schema, users []string, n int) []ingest.Row {
	t.Helper()
	rows := make([]ingest.Row, 0, n)
	for i := 0; i < n; i++ {
		action := "shop"
		if i%5 == 0 {
			action = "launch"
		}
		r, err := ingest.RowFromValues(schema,
			users[i%len(users)], int64(2_000_000_000+i), action, "Novaland", "Newtown", "mage", int64(3), int64(i%50))
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	return rows
}

// tableOf collects ingest rows into a sorted activity table.
func tableOf(t *testing.T, schema *activity.Schema, rows []ingest.Row) *activity.Table {
	t.Helper()
	out := activity.NewTable(schema)
	for _, r := range rows {
		out.AppendRow(r.Strs, r.Ints)
	}
	if err := out.SortByPK(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestChunkGranularCompactionMatchesFullRebuild(t *testing.T) {
	full := gen.Generate(gen.Config{Users: 110, Days: 16, MeanActions: 11, Seed: 23, ZipfS: 1.2})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	schema := full.Schema()
	var users []string
	full.UserBlocks(func(u string, _, _ int) { users = append(users, u) })

	// Uniform: every third existing user plus fresh users that sort past
	// every chunk range (boundary inserts). Zipf/hot: two existing users
	// plus one fresh. Equal row counts.
	var uniformUsers []string
	for i := 0; i < len(users); i += 3 {
		uniformUsers = append(uniformUsers, users[i])
	}
	uniformUsers = append(uniformUsers, "zz-fresh-0", "zz-fresh-1", "zz-fresh-2")
	zipfUsers := []string{users[len(users)/4], users[len(users)/2], "zz-fresh-9"}
	const deltaN = 600

	rng := rand.New(rand.NewSource(7))
	sources := make([]string, 0, 12)
	for len(sources) < 12 {
		sources = append(sources, randomQuery(rng))
	}
	queries := make([]*cohort.Query, len(sources))
	for i, src := range sources {
		queries[i] = parseQuery(t, src)
	}

	runAll := func(inputs []ShardInput) []*cohort.Result {
		t.Helper()
		out := make([]*cohort.Result, len(queries))
		for i, q := range queries {
			res, err := ExecuteShards(q, inputs, ExecOptions{Parallelism: -1})
			if err != nil {
				t.Fatalf("query %q: %v", sources[i], err)
			}
			out[i] = res
		}
		return out
	}
	sealedInputs := func(s *storage.Sharded) []ShardInput {
		inputs := make([]ShardInput, s.NumShards())
		for i := range inputs {
			inputs[i] = ShardInput{Sealed: s.Shard(i)}
		}
		return inputs
	}

	for _, shards := range []int{1, 2, 4} {
		bytesByShape := map[string]int64{}
		for _, shape := range []struct {
			name  string
			users []string
		}{{"uniform", uniformUsers}, {"zipf", zipfUsers}} {
			delta := deltaRowsFor(t, schema, shape.users, deltaN)

			// Reference: a whole-table rebuild over sealed + delta rows.
			merged, err := activity.MergeSorted(full, tableOf(t, schema, delta))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := storage.BuildSharded(merged, shards, storage.Options{ChunkSize: 200})
			if err != nil {
				t.Fatal(err)
			}
			wants := runAll(sealedInputs(ref))

			// Chunk-granular path: live table over the sealed tier, delta
			// appended, compacted, every compaction committed incrementally.
			sealed, err := storage.BuildSharded(full, shards, storage.Options{ChunkSize: 200})
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "prop.cohana")
			if _, err := storage.CommitSharded(path, sealed); err != nil {
				t.Fatal(err)
			}
			var persisted storage.CommitStats
			lt, err := ingest.OpenSharded(sealed, ingest.Config{
				ChunkSize: 200,
				Persist: func(d storage.LayoutDelta) error {
					st, err := storage.CommitSharded(path, d.Layout)
					if err == nil {
						persisted.Add(st)
					}
					return err
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := lt.Append(delta); err != nil {
				t.Fatal(err)
			}
			if err := lt.Compact(); err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("shards=%d %s", shards, shape.name)
			st := lt.Stats()
			if st.DeltaRows != 0 || st.SealedRows != merged.Len() {
				t.Fatalf("%s: post-compaction stats %+v, want %d sealed rows", label, st, merged.Len())
			}
			gots := runAll(shardInputsOf(lt.Views()))
			for i := range queries {
				requireBitEqual(t, label+" live: "+sources[i], gots[i], wants[i])
			}
			if err := lt.Close(); err != nil {
				t.Fatal(err)
			}

			// The committed files reload into equivalent state: same totals,
			// bit-identical results.
			back, err := storage.ReadSharded(path)
			if err != nil {
				t.Fatal(err)
			}
			if back.NumRows() != merged.Len() || back.NumUsers() != merged.NumUsers() || back.NumShards() != shards {
				t.Fatalf("%s: reloaded %d rows / %d users / %d shards, want %d / %d / %d",
					label, back.NumRows(), back.NumUsers(), back.NumShards(), merged.Len(), merged.NumUsers(), shards)
			}
			reloaded := runAll(sealedInputs(back))
			for i := range queries {
				requireBitEqual(t, label+" reloaded: "+sources[i], reloaded[i], wants[i])
			}

			// The hot-user compaction must be surgical: chunks untouched by
			// the delta are carried over, and their on-disk segments reused.
			if shape.name == "zipf" {
				if st.ChunksReused == 0 {
					t.Fatalf("%s: no chunks reused — compaction rebuilt the whole shard", label)
				}
				if persisted.SegmentsReused == 0 {
					t.Fatalf("%s: no segments reused — commit rewrote the whole layout", label)
				}
			}
			bytesByShape[shape.name] = persisted.BytesWritten
		}
		if bytesByShape["zipf"] >= bytesByShape["uniform"] {
			t.Fatalf("shards=%d: zipf delta persisted %d bytes, want strictly fewer than uniform's %d",
				shards, bytesByShape["zipf"], bytesByShape["uniform"])
		}
	}
}
