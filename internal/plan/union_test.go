package plan

import (
	"testing"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/storage"
)

// The union path's correctness contract: for any split of an activity table
// into a sealed tier and a delta tier, executing against (sealed + delta)
// must produce exactly the result of executing against the whole table
// sealed at once. The split below is adversarial: existing users gain late
// delta tuples (their sealed blocks must re-route through the row path),
// brand-new users appear only in the delta, and a delta-only dimension value
// ("Atlantis") exercises cohort keys that no sealed dictionary contains.

// copyRow appends row r of src to dst.
func copyRow(dst, src *activity.Table, r int) {
	schema := src.Schema()
	strs := make([]string, schema.NumCols())
	ints := make([]int64, schema.NumCols())
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			strs[c] = src.Strings(c)[r]
		} else {
			ints[c] = src.Ints(c)[r]
		}
	}
	dst.AppendRow(strs, ints)
}

var unionQueries = []string{
	// Retention, no conditions.
	`SELECT country, COHORTSIZE, AGE, UserCount()
	 FROM D BIRTH FROM action = "launch" COHORT BY country`,
	// Birth date range + aggregate over a measure.
	`SELECT country, COHORTSIZE, AGE, Sum(gold)
	 FROM D BIRTH FROM action = "shop" AND time BETWEEN "2013-05-21" AND "2013-05-30"
	 COHORT BY country`,
	// Age condition with a Birth() reference and multi-attribute cohorts.
	`SELECT country, COHORTSIZE, AGE, Avg(gold), Count()
	 FROM D BIRTH FROM action = "shop"
	 AGE ACTIVITIES IN action = "shop" AND country = Birth(country)
	 COHORT BY country, role`,
	// Time-binned cohorts (week bins) with min/max aggregates.
	`SELECT COHORTSIZE, AGE, Min(session), Max(session)
	 FROM D BIRTH FROM action = "launch" AND role = "dwarf"
	 COHORT BY time(week)`,
	// Age-bounded retention.
	`SELECT country, COHORTSIZE, AGE, UserCount()
	 FROM D BIRTH FROM action = "launch"
	 AGE ACTIVITIES IN AGE < 7 COHORT BY country`,
}

func TestUnionExecutionMatchesSealedExecution(t *testing.T) {
	full := gen.Generate(gen.Config{Users: 90, Days: 20, MeanActions: 14, Seed: 7})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	schema := full.Schema()

	// Split: roughly 1 in 5 rows become delta rows, keyed on the row index
	// so existing users end up with tuples in both tiers.
	sealedRows := activity.NewTable(schema)
	delta := activity.NewTable(schema)
	for r := 0; r < full.Len(); r++ {
		if r%5 == 2 {
			copyRow(delta, full, r)
		} else {
			copyRow(sealedRows, full, r)
		}
	}
	// Brand-new users, one with a dimension value no sealed dictionary
	// holds; the same rows go into the reference table.
	extra := [][]any{
		{"zz-new-1", int64(1369000000), "launch", "Atlantis", "Thera", "dwarf", int64(10), int64(0)},
		{"zz-new-1", int64(1369090000), "shop", "Atlantis", "Thera", "dwarf", int64(5), int64(42)},
		{"zz-new-2", int64(1369000500), "launch", "China", "Beijing", "wizard", int64(7), int64(0)},
		{"zz-new-2", int64(1369100500), "shop", "China", "Beijing", "wizard", int64(3), int64(9)},
	}
	reference := activity.NewTable(schema)
	for r := 0; r < full.Len(); r++ {
		copyRow(reference, full, r)
	}
	for _, vals := range extra {
		if err := delta.Append(vals...); err != nil {
			t.Fatal(err)
		}
		if err := reference.Append(vals...); err != nil {
			t.Fatal(err)
		}
	}
	if err := sealedRows.SortByPK(); err != nil {
		t.Fatal(err)
	}
	if err := delta.SortByPK(); err != nil {
		t.Fatal(err)
	}
	if err := reference.SortByPK(); err != nil {
		t.Fatal(err)
	}

	// Small chunks so the sealed fan-out and pruning actually run.
	sealed, err := storage.Build(sealedRows, storage.Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	refSealed, err := storage.Build(reference, storage.Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	preUnion, err := cohort.BuildUnionDelta(sealed, delta)
	if err != nil {
		t.Fatal(err)
	}

	for qi, src := range unionQueries {
		q := parseQuery(t, src)
		want, err := Execute(q, refSealed, ExecOptions{Parallelism: -1})
		if err != nil {
			t.Fatalf("query %d reference: %v", qi, err)
		}
		for _, parallelism := range []int{0, -1} {
			for _, opts := range []ExecOptions{
				{Delta: delta},                  // per-query union build
				{Delta: delta, Union: preUnion}, // fully precomputed (the ingest View path)
			} {
				opts.Parallelism = parallelism
				got, err := Execute(q, sealed, opts)
				if err != nil {
					t.Fatalf("query %d union: %v", qi, err)
				}
				if !got.Equal(want) {
					t.Fatalf("query %d (parallelism=%d, pre=%v): union result differs from sealed reference:\n%s",
						qi, parallelism, opts.Union != nil, got.Diff(want))
				}
			}
		}
	}
}

// TestUnionEmptyDeltaFallsThrough pins the fast path: a nil or empty delta
// must not change execution.
func TestUnionEmptyDeltaFallsThrough(t *testing.T) {
	full := gen.Generate(gen.Config{Users: 30, Days: 10, MeanActions: 8, Seed: 5})
	if err := full.SortByPK(); err != nil {
		t.Fatal(err)
	}
	sealed, err := storage.Build(full, storage.Options{ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	q := parseQuery(t, unionQueries[0])
	want, err := Execute(q, sealed, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []*activity.Table{nil, activity.NewTable(full.Schema())} {
		got, err := Execute(q, sealed, ExecOptions{Delta: delta})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("empty delta changed the result:\n%s", got.Diff(want))
		}
	}
}

func parseQuery(t *testing.T, src string) *cohort.Query {
	t.Helper()
	stmt, err := parser.ParseCohort(src)
	if err != nil {
		t.Fatalf("parsing %q: %v", src, err)
	}
	return stmt.Query
}
