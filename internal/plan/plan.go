// Package plan builds and optimizes cohort query plans and executes them
// against COHANA tables (Section 4.2 of the paper). A logical plan is the
// paper's operator tree — TableScan at the leaf, a sequence of birth and age
// selections, and the cohort aggregation at the root. The optimizer applies
// the commutativity property of Equation 1 to push every birth selection
// below every age selection, so the modified TableScan can skip all activity
// tuples of unqualified users. Execution runs the optimized plan per chunk
// (after chunk pruning) and merges the partial accumulators.
package plan

import (
	"context"
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Op is a logical plan operator.
type Op interface{ opName() string }

// Scan is the TableScan leaf.
type Scan struct{}

// BirthSelect is σb[C,e].
type BirthSelect struct{ Cond expr.Expr }

// AgeSelect is σg[C,e].
type AgeSelect struct{ Cond expr.Expr }

// CohortAgg is γc[L,e,fA], always the plan root.
type CohortAgg struct {
	CohortBy []cohort.CohortKey
	Aggs     []cohort.AggSpec
}

func (Scan) opName() string        { return "TableScan" }
func (BirthSelect) opName() string { return "BirthSelect" }
func (AgeSelect) opName() string   { return "AgeSelect" }
func (CohortAgg) opName() string   { return "CohortAgg" }

// Plan is a bottom-up operator sequence: Plan[0] is always Scan and the last
// element is always CohortAgg.
type Plan []Op

// FromQuery builds the canonical logical plan for a query. The syntax allows
// one birth and one age selection; algebraic compositions with several
// selections can be built directly as a Plan.
func FromQuery(q *cohort.Query) Plan {
	p := Plan{Scan{}}
	// Mirror the written clause order (AGE ACTIVITIES IN appears before
	// BIRTH FROM in Q1), leaving the reordering to Optimize.
	if q.AgeCond != nil {
		p = append(p, AgeSelect{Cond: q.AgeCond})
	}
	if q.BirthCond != nil {
		p = append(p, BirthSelect{Cond: q.BirthCond})
	}
	p = append(p, CohortAgg{CohortBy: q.CohortBy, Aggs: q.Aggs})
	return p
}

// Optimize pushes birth selections below age selections (valid by Equation 1
// when all operators share one birth action, which Validate enforces) and
// fuses adjacent selections of the same kind into single conjunctions. The
// result has the shape Scan, BirthSelect?, AgeSelect?, CohortAgg.
func Optimize(p Plan) (Plan, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("plan: too short (%d ops)", len(p))
	}
	if _, ok := p[0].(Scan); !ok {
		return nil, fmt.Errorf("plan: leaf must be TableScan, got %s", p[0].opName())
	}
	agg, ok := p[len(p)-1].(CohortAgg)
	if !ok {
		return nil, fmt.Errorf("plan: root must be CohortAgg, got %s", p[len(p)-1].opName())
	}
	var birthConds, ageConds []expr.Expr
	for _, op := range p[1 : len(p)-1] {
		switch x := op.(type) {
		case BirthSelect:
			birthConds = append(birthConds, expr.Conjuncts(x.Cond)...)
		case AgeSelect:
			ageConds = append(ageConds, expr.Conjuncts(x.Cond)...)
		default:
			return nil, fmt.Errorf("plan: %s not allowed between scan and aggregation", op.opName())
		}
	}
	out := Plan{Scan{}}
	if c := expr.AndAll(birthConds); c != nil {
		out = append(out, BirthSelect{Cond: c})
	}
	if c := expr.AndAll(ageConds); c != nil {
		out = append(out, AgeSelect{Cond: c})
	}
	return append(out, agg), nil
}

// ToQuery folds an optimized plan back into the query form the executor
// consumes.
func ToQuery(p Plan, birthAction string, unit cohort.Unit) (*cohort.Query, error) {
	opt, err := Optimize(p)
	if err != nil {
		return nil, err
	}
	q := &cohort.Query{BirthAction: birthAction, AgeUnit: unit}
	for _, op := range opt {
		switch x := op.(type) {
		case BirthSelect:
			q.BirthCond = x.Cond
		case AgeSelect:
			q.AgeCond = x.Cond
		case CohortAgg:
			q.CohortBy = x.CohortBy
			q.Aggs = x.Aggs
		}
	}
	return q, nil
}

// Describe renders the plan top-down like Figure 5 of the paper.
func Describe(p Plan) string {
	out := ""
	for i := len(p) - 1; i >= 0; i-- {
		switch x := p[i].(type) {
		case CohortAgg:
			out += fmt.Sprintf("CohortAgg[%v]\n", x.Aggs)
		case BirthSelect:
			out += fmt.Sprintf("  BirthSelect[%s]\n", x.Cond)
		case AgeSelect:
			out += fmt.Sprintf("  AgeSelect[%s]\n", x.Cond)
		case Scan:
			out += "    TableScan\n"
		}
	}
	return out
}

// ExecOptions controls physical execution.
type ExecOptions struct {
	// Parallelism is the number of chunks processed concurrently. 0 or 1
	// selects the paper's single-threaded execution; negative uses
	// GOMAXPROCS workers.
	Parallelism int
	// DisablePruning turns off chunk pruning, for the ablation experiments.
	DisablePruning bool
	// Pool optionally routes chunk work through a shared bounded worker
	// pool (see cohort.Pool), so concurrent queries — e.g. from the HTTP
	// server — share one set of workers instead of each spawning their own.
	Pool *cohort.Pool
	// Ctx, when non-nil, cancels the execution: shard and chunk fan-outs
	// stop early and Execute/ExecuteShards return Ctx.Err(). The HTTP
	// server passes the request context so a disconnected client releases
	// its workers.
	Ctx context.Context
	// Delta is an optional uncompressed live tier (sorted by primary key)
	// unioned with the sealed table, so queries see freshly ingested
	// activity tuples before compaction seals them.
	Delta *activity.Table
	// Union optionally carries the precomputed row-scan input for exactly
	// this (table, Delta) pair (see cohort.BuildUnionDelta); nil computes
	// it per query.
	Union *cohort.UnionDelta
	// DisablePushdown forces predicate evaluation through the generic
	// decoded path instead of the encoded-domain pushdown (see
	// cohort.RunOptions.DisablePushdown), for ablations and the
	// streaming/pushdown equivalence tests.
	DisablePushdown bool
	// DisableVectorized forces the scalar row-at-a-time reference loop
	// instead of the run-aware vectorized kernels (see
	// cohort.RunOptions.DisableVectorized), for ablations and the
	// vectorized equivalence tests. Vectorized execution is the default.
	DisableVectorized bool
	// Materialize selects the pre-streaming reference merge inside each
	// shard (see cohort.RunOptions.Materialize).
	Materialize bool
	// Stats, when non-nil, accumulates decoder-level execution counters
	// across all shards and chunks of the query.
	Stats *cohort.ExecStats
	// Trace, when non-nil, is the query's root trace span: execution attaches
	// child spans for compile/bind, each shard (with per-chunk detail and
	// delta-union timing, see cohort.RunOptions.Trace) and the cross-shard
	// merge, each carrying measured rows/bytes/ns. Nil — the default — keeps
	// the hot path span-free.
	Trace *obs.Span
}

func (o ExecOptions) runOptions() cohort.RunOptions {
	return cohort.RunOptions{
		Parallelism:       o.Parallelism,
		DisablePruning:    o.DisablePruning,
		Pool:              o.Pool,
		Ctx:               o.Ctx,
		DisablePushdown:   o.DisablePushdown,
		DisableVectorized: o.DisableVectorized,
		Materialize:       o.Materialize,
		Stats:             o.Stats,
	}
}

// ShardInput is one shard's execution input for ExecuteShards: its sealed
// compressed tier plus, for live tables, the shard's delta tier and the
// cached union artifacts (see ingest.View).
type ShardInput struct {
	Sealed *storage.Table
	Delta  *activity.Table
	Union  *cohort.UnionDelta
}

// Execute compiles and runs a cohort query against a COHANA table, unioning
// in the live delta tier when one is present.
func Execute(q *cohort.Query, tbl *storage.Table, opts ExecOptions) (*cohort.Result, error) {
	return ExecuteShards(q, []ShardInput{{
		Sealed: tbl,
		Delta:  opts.Delta,
		Union:  opts.Union,
	}}, opts)
}

// ExecuteShards compiles a cohort query once and scatter-gathers it over a
// user-partitioned table: every shard runs the pruned chunk executor (union
// execution when the shard has a live delta) into its own partial
// accumulator, shards run concurrently, and the partials merge into one
// result. Users never span shards — the clustering property lifted to the
// partition level — so the merge needs no distinct-count correction, exactly
// as chunk partials merge within one shard. A sharded execution returns
// bit-identical results to the same query over the unsharded table.
func ExecuteShards(q *cohort.Query, shards []ShardInput, opts ExecOptions) (*cohort.Result, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("plan: no shards to execute over")
	}
	sp := opts.Trace.Child("compile")
	// Run the plan through the optimizer so every execution benefits from
	// birth-selection push-down, exactly as Section 4.2 prescribes.
	optimized, err := ToQuery(FromQuery(q), q.BirthAction, q.AgeUnit)
	if err != nil {
		return nil, err
	}
	schema := shards[0].Sealed.Schema()
	// The row-scan twin is compiled once against the shared schema; it is
	// only consulted for shards that hold delta rows.
	var rows *cohort.RowQuery
	if shardsHaveDelta(shards) {
		if rows, err = cohort.CompileRows(optimized, schema); err != nil {
			return nil, err
		}
	}
	compiled := make([]*cohort.Compiled, len(shards))
	for i, sh := range shards {
		// Compile binds per shard: each shard resolves the birth action and
		// condition literals against its own global dictionaries.
		if compiled[i], err = cohort.Compile(optimized, sh.Sealed); err != nil {
			return nil, err
		}
	}
	sp.End()
	sp.SetInt("shards", int64(len(shards)))
	return executeCompiled(optimized, compiled, rows, shards, opts)
}

// shardsHaveDelta reports whether any shard holds live delta rows.
func shardsHaveDelta(shards []ShardInput) bool {
	for _, sh := range shards {
		if sh.Delta != nil && sh.Delta.Len() > 0 {
			return true
		}
	}
	return false
}

// executeCompiled is the shared execution tail behind ExecuteShards and the
// plan cache's ExecuteCached: it fans the pre-compiled bindings out over the
// shards and streams each shard's partial accumulator into the merge as it
// completes — the gather no longer waits for the slowest shard before
// touching the fastest one's partial. Merge order is arrival order, which is
// unobservable for the same reason chunk-partial streaming is (exact integer
// sums, order-free min/max, sorted Result).
func executeCompiled(optimized *cohort.Query, compiled []*cohort.Compiled, rows *cohort.RowQuery, shards []ShardInput, opts ExecOptions) (*cohort.Result, error) {
	start := time.Now()
	runOpts := opts.runOptions()
	var acc *cohort.Accumulator
	errs := make([]error, len(shards))
	if len(shards) == 1 {
		sp := opts.Trace.Child("shard 0")
		ro := runOpts
		ro.Trace = sp
		acc, errs[0] = runShard(compiled[0], rows, shards[0], ro)
		sp.End()
	} else {
		type shardPartial struct {
			idx int
			acc *cohort.Accumulator
			err error
		}
		out := make(chan shardPartial, len(shards))
		for i := range shards {
			//lint:allow goroutinepool a shard task blocks on chunk partials that need pool workers; pooling it deadlocks a saturated pool (fan-out is bounded by the shard count)
			go func(i int) {
				sp := opts.Trace.Child(fmt.Sprintf("shard %d", i))
				ro := runOpts
				ro.Trace = sp
				a, err := runShard(compiled[i], rows, shards[i], ro)
				sp.End()
				out <- shardPartial{idx: i, acc: a, err: err}
			}(i)
		}
		var mergeNs int64
		for range shards {
			p := <-out
			if p.err != nil {
				errs[p.idx] = p.err
				continue
			}
			if acc == nil {
				acc = p.acc
			} else {
				t0 := time.Now()
				acc.Merge(p.acc)
				mergeNs += time.Since(t0).Nanoseconds()
			}
		}
		if opts.Trace != nil {
			// The merge span's duration is the accumulated Merge time only —
			// the gather's channel waits overlap shard execution and would
			// double-count it.
			m := opts.Trace.Child("merge")
			m.DurNs = mergeNs
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("plan: shard %d: %w", i, err)
		}
	}
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return nil, opts.Ctx.Err()
	}
	if acc == nil {
		acc = cohort.NewAccumulator(compiled[0].NumAggs())
	}
	res := acc.Result(compiled[0].KeyColNames(), optimized.Aggs)
	obs.QuerySeconds.ObserveSince(start)
	obs.QueriesTotal.Inc()
	opts.Trace.SetInt("result_rows", int64(len(res.Rows)))
	return res, nil
}

// runShard executes one shard's partial: the pruned chunk fan-out, unioned
// with the shard's delta tier when present.
func runShard(c *cohort.Compiled, rows *cohort.RowQuery, sh ShardInput, opts cohort.RunOptions) (*cohort.Accumulator, error) {
	if sh.Delta != nil && sh.Delta.Len() > 0 {
		return cohort.RunUnionAccum(c, rows, sh.Delta, sh.Union, opts)
	}
	return cohort.RunAccum(c, opts)
}

// PrunedChunks reports how many chunks pruning would skip for q, exposed for
// tests and the ablation benchmarks.
func PrunedChunks(q *cohort.Query, tbl *storage.Table) (int, error) {
	skip, err := PruneMap(q, tbl)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, s := range skip {
		if s {
			n++
		}
	}
	return n, nil
}

// PruneMap reports, chunk by chunk, whether pruning would skip the chunk for
// q — the per-chunk detail behind PrunedChunks, used by explain and by the
// shard-relevance fingerprint of the result cache.
func PruneMap(q *cohort.Query, tbl *storage.Table) ([]bool, error) {
	compiled, err := cohort.Compile(q, tbl)
	if err != nil {
		return nil, err
	}
	skip := make([]bool, tbl.NumChunks())
	for i := range skip {
		skip[i] = compiled.CanSkipChunk(i)
	}
	return skip, nil
}
