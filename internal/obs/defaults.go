package obs

// Every engine metric, registered once on the Default registry. Names are
// stable snake_case with conventional unit suffixes: counters end _total,
// latency histograms _seconds, size histograms _bytes or _rows (enforced by
// TestMetricNameConventions and the CI vet step). Instrumented packages
// (plan, cohort, ingest, server, the catalog) import obs and touch these
// vars directly.

// Latency bucket bounds in seconds: 50µs to 10s, roughly geometric. The
// engine's warm queries land around 100µs-10ms; fsyncs and compactions reach
// into the tail.
var latencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Row-count bucket bounds for batch sizes.
var rowsBuckets = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000}

// Read path.
var (
	QuerySeconds = Default.Histogram("cohana_query_seconds",
		"Cohort query execution latency in seconds (engine-side, per executed query; result-cache hits never reach the engine).",
		latencyBuckets)
	QueriesTotal = Default.Counter("cohana_queries_total",
		"Cohort queries executed by the engine (cache misses and uncached queries).")
	RowsScannedTotal = Default.Counter("cohana_rows_scanned_total",
		"Rows visited by chunk scans after pruning, summed over all queries.")
	ValueBytesDecodedTotal = Default.Counter("cohana_value_bytes_decoded_total",
		"Value bytes decoded from chunk columns; the pushdown keeps this below the generic path.")
	EncodedChecksTotal = Default.Counter("cohana_encoded_checks_total",
		"Predicate evaluations that stayed in the encoded domain (decoder-level pushdown).")
	RunsEvaluatedTotal = Default.Counter("cohana_runs_evaluated_total",
		"(value-id, runLength) runs examined by the run-aware vectorized kernels; one run evaluation covers runLength rows.")
	RowsBatchedTotal = Default.Counter("cohana_rows_batched_total",
		"Rows processed run-at-a-time by the vectorized execution path (the scalar reference path contributes zero).")
	ChunksScannedTotal = Default.Counter("cohana_chunks_scanned_total",
		"Chunks scanned by queries (post-pruning).")
	ChunksPrunedTotal = Default.Counter("cohana_chunks_pruned_total",
		"Chunks skipped by birth-range pruning.")
	DeltaRowsScannedTotal = Default.Counter("cohana_delta_rows_scanned_total",
		"Uncompressed delta rows visited by union execution.")
)

// Caches.
var (
	PlanCacheHitsTotal = Default.Counter("cohana_plan_cache_hits_total",
		"Prepared-plan cache hits (normalized query text already compiled).")
	PlanCacheMissesTotal = Default.Counter("cohana_plan_cache_misses_total",
		"Prepared-plan cache misses (full parse, validate, optimize, compile).")
	PlanCacheRebindsTotal = Default.Counter("cohana_plan_cache_rebinds_total",
		"Per-shard plan rebinds forced by a sealed-tier generation change.")
	ResultCacheHitsTotal = Default.Counter("cohana_result_cache_hits_total",
		"Server result-cache hits (response served without executing the query).")
	ResultCacheMissesTotal = Default.Counter("cohana_result_cache_misses_total",
		"Server result-cache misses.")
)

// Server surface.
var (
	QueryErrorsTotal = Default.Counter("cohana_query_errors_total",
		"Query requests answered with a server-side (5xx) error.")
	HTTPRequestsTotal = Default.Counter("cohana_http_requests_total",
		"HTTP requests served, across all routes and statuses.")
)

// Write path.
var (
	AppendSeconds = Default.Histogram("cohana_append_seconds",
		"Append batch latency in seconds (validate, journal with fsync, admit to the delta).",
		latencyBuckets)
	AppendBatchRows = Default.Histogram("cohana_append_batch_rows",
		"Rows per accepted append batch.",
		rowsBuckets)
	AppendRowsTotal = Default.Counter("cohana_append_rows_total",
		"Rows accepted into the uncompressed delta tier.")
	AppendBatchesTotal = Default.Counter("cohana_append_batches_total",
		"Append batches accepted.")
	JournalFsyncSeconds = Default.Histogram("cohana_journal_fsync_seconds",
		"Journal fsync latency in seconds (one per journaled batch per shard, plus coordinator commits).",
		latencyBuckets)
	CompactSeconds = Default.Histogram("cohana_compact_seconds",
		"Shard compaction latency in seconds (delta merge, persist, swap, journal rewrite).",
		latencyBuckets)
	CompactionsTotal = Default.Counter("cohana_compactions_total",
		"Shard compactions completed.")
	ChunksRebuiltTotal = Default.Counter("cohana_chunks_rebuilt_total",
		"Chunks rebuilt by compaction (touched by delta users).")
	ChunksReusedTotal = Default.Counter("cohana_chunks_reused_total",
		"Sealed chunks reused verbatim by compaction (untouched by delta users).")
	PersistedBytesTotal = Default.Counter("cohana_persisted_bytes_total",
		"Bytes written to segment files by incremental persistence.")
	SegmentsWrittenTotal = Default.Counter("cohana_segments_written_total",
		"Content-addressed segment files written by persistence.")
	SegmentsReusedTotal = Default.Counter("cohana_segments_reused_total",
		"Content-addressed segment files reused verbatim by persistence.")
)

// Lazy chunk loading and the process-wide chunk cache.
var (
	SegmentReadsTotal = Default.Counter("cohana_segment_reads_total",
		"Chunk segment files read from disk (lazy cold loads plus eager table opens).")
	ChunkCacheHitsTotal = Default.Counter("cohana_chunk_cache_hits_total",
		"Chunk pins satisfied by a resident decoded segment (no disk read).")
	ChunkCacheMissesTotal = Default.Counter("cohana_chunk_cache_misses_total",
		"Chunk pins that had to load and decode a segment from disk.")
	ChunkCacheEvictionsTotal = Default.Counter("cohana_chunk_cache_evictions_total",
		"Decoded segments evicted from the chunk cache under the memory budget.")
	ChunkCacheResidentBytes = Default.Gauge("cohana_chunk_cache_resident_bytes",
		"Decoded segment bytes currently resident in the chunk cache.")
	ChunkColdLoadSeconds = Default.Histogram("cohana_chunk_cold_load_seconds",
		"Latency of loading and decoding one chunk segment on first touch.",
		latencyBuckets)
)

// Per-table state, refreshed from the catalog at scrape time.
var (
	TableShards = Default.GaugeVec("cohana_table_shards",
		"Shards per table.", "table")
	TableGeneration = Default.GaugeVec("cohana_table_generation",
		"Table generation (sum of the per-shard generations; advances on every append, compaction and reload).", "table")
	TableDeltaRows = Default.GaugeVec("cohana_table_delta_rows",
		"Uncompressed delta rows per table awaiting compaction.", "table")
	TableSealedRows = Default.GaugeVec("cohana_table_sealed_rows",
		"Sealed (compressed) rows per table.", "table")
)
