package obs

import (
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("x_gauge", "a gauge")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketsCumulativeAndOrdered(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.05, 7} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Buckets must be le-ordered and cumulative, ending at +Inf == count.
	re := regexp.MustCompile(`lat_seconds_bucket\{le="([^"]+)"\} (\d+)`)
	matches := re.FindAllStringSubmatch(out, -1)
	if len(matches) != 4 {
		t.Fatalf("want 4 bucket lines, got %d in:\n%s", len(matches), out)
	}
	prevBound := -1.0
	prevCum := uint64(0)
	for i, m := range matches {
		var bound float64
		if m[1] == "+Inf" {
			if i != len(matches)-1 {
				t.Fatalf("+Inf bucket not last")
			}
			bound = 1e308
		} else {
			var err error
			bound, err = strconv.ParseFloat(m[1], 64)
			if err != nil {
				t.Fatal(err)
			}
		}
		if bound <= prevBound {
			t.Fatalf("buckets not le-ordered at %q", m[1])
		}
		cum, _ := strconv.ParseUint(m[2], 10, 64)
		if cum < prevCum {
			t.Fatalf("buckets not cumulative at %q: %d < %d", m[1], cum, prevCum)
		}
		prevBound, prevCum = bound, cum
	}
	if prevCum != 4 {
		t.Fatalf("+Inf bucket = %d, want 4", prevCum)
	}
	if !strings.Contains(out, "lat_seconds_count 4") {
		t.Fatalf("missing _count line:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds_sum 7.05") {
		t.Fatalf("missing/incorrect _sum line:\n%s", out)
	}
}

func TestExpositionHelpAndType(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a")
	r.Gauge("b", "gauges b")
	r.Histogram("c_seconds", "times c", []float64{1})
	r.GaugeVec("d", "per-thing d", "thing").With(`we"ird\nm`).Set(2)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# HELP a_total counts a", "# TYPE a_total counter",
		"# HELP b gauges b", "# TYPE b gauge",
		"# HELP c_seconds times c", "# TYPE c_seconds histogram",
		"# TYPE d gauge", `d{thing="we\"ird\\nm"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "y")
}

func TestSetEnabledNoops(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("e_total", "x")
	h := r.Histogram("e_seconds", "x", []float64{1})
	SetEnabled(false)
	defer SetEnabled(true)
	c.Inc()
	h.Observe(0.5)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry still moved: counter=%d hist=%d", c.Value(), h.Count())
	}
}

// TestMetricNameConventions is the metrics-name lint run by CI's vet step:
// every registered metric is snake_case, counters end _total, histograms end
// in a unit suffix.
func TestMetricNameConventions(t *testing.T) {
	nameRE := regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	n := 0
	Default.Each(func(name, kind string) {
		n++
		if !nameRE.MatchString(name) {
			t.Errorf("metric %q is not snake_case", name)
		}
		if !strings.HasPrefix(name, "cohana_") {
			t.Errorf("metric %q missing cohana_ namespace", name)
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("counter %q must end in _total", name)
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") && !strings.HasSuffix(name, "_rows") {
				t.Errorf("histogram %q must end in _seconds, _bytes or _rows", name)
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				t.Errorf("gauge %q must not end in _total", name)
			}
		default:
			t.Errorf("metric %q has unknown kind %q", name, kind)
		}
	})
	if n == 0 {
		t.Fatal("default registry is empty")
	}
}

func TestSpanTree(t *testing.T) {
	root := NewSpan("query")
	sh := root.Child("shard 0")
	var wg sync.WaitGroup
	for i := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := sh.Child("chunk")
			c.SetInt("rows_scanned", int64(10*(i+1)))
			c.End()
			sh.AddInt("rows_scanned", int64(10*(i+1)))
		}()
	}
	wg.Wait()
	sh.End()
	root.SetNote("cache", "miss")
	time.Sleep(time.Millisecond)
	root.End()
	if root.DurNs <= 0 {
		t.Fatal("root duration not set")
	}
	if got := sh.Int("rows_scanned"); got != 100 {
		t.Fatalf("shard rows = %d, want 100", got)
	}
	if len(sh.Children) != 4 {
		t.Fatalf("chunk children = %d, want 4", len(sh.Children))
	}
	if root.Find("shard 0") != sh {
		t.Fatal("Find failed")
	}
	// nil-safety: the untraced path threads nil spans everywhere.
	var nilSpan *Span
	nilSpan.Child("x").SetInt("y", 1)
	nilSpan.End()
	if nilSpan.Render() != "" || nilSpan.Int("y") != 0 {
		t.Fatal("nil span not inert")
	}
	// JSON round-trip (the /v1/query trace field).
	raw, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "query" || len(back.Children) != 1 || back.Notes["cache"] != "miss" {
		t.Fatalf("round-trip mismatch: %s", raw)
	}
	// Text rendering carries name, duration and attrs.
	text := root.Render()
	if !strings.Contains(text, "query:") || !strings.Contains(text, "rows_scanned=100") {
		t.Fatalf("render missing fields:\n%s", text)
	}
}
