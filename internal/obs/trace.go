package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of a query's execution. Spans form a tree: the
// root covers the whole query, children cover prepare (parse/plan-cache),
// per-shard compile+bind and scan, per-chunk scans, delta union, and the
// accumulator merge. Numeric attributes carry the decoder-level tallies
// (rows scanned, value bytes decoded, encoded checks) so a trace is
// consistent with cohort.ExecStats by construction.
//
// Spans are allocated only when a caller requests a trace; the untraced hot
// path carries a nil *Span and pays a single pointer test. Child creation
// and attribute writes are mutex-guarded: shard spans are written by
// concurrent workers.
type Span struct {
	Name string `json:"name"`
	// DurNs is the span's wall-clock duration in nanoseconds, set by End.
	DurNs int64 `json:"durNs"`
	// Attrs are numeric measurements (rows, bytes, counts).
	Attrs map[string]int64 `json:"attrs,omitempty"`
	// Notes are short string annotations (e.g. plan cache "hit"/"miss").
	Notes map[string]string `json:"notes,omitempty"`
	// Children are sub-phases, in creation order.
	Children []*Span `json:"children,omitempty"`

	mu    sync.Mutex
	start time.Time
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{Name: name, start: time.Now()}
}

// Child starts a sub-span. Safe for concurrent use; children appear in
// creation order. Child on a nil span returns nil, so call sites can thread
// an optional trace without branching.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, start: time.Now()}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End fixes the span's duration. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.DurNs = time.Since(s.start).Nanoseconds()
}

// SetInt records a numeric attribute. No-op on nil.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]int64)
	}
	s.Attrs[key] = v
	s.mu.Unlock()
}

// AddInt adds to a numeric attribute. No-op on nil.
func (s *Span) AddInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]int64)
	}
	s.Attrs[key] += v
	s.mu.Unlock()
}

// SetNote records a string annotation. No-op on nil.
func (s *Span) SetNote(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Notes == nil {
		s.Notes = make(map[string]string)
	}
	s.Notes[key] = val
	s.mu.Unlock()
}

// Int returns a numeric attribute (zero when absent or on nil).
func (s *Span) Int(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Attrs[key]
}

// Find returns the first child with the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Render returns an indented text rendering of the span tree, one line per
// span: name, duration, then attributes (sorted) and notes. EXPLAIN ANALYZE
// embeds this under the static plan.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	for range depth {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s: %s", s.Name, formatDur(s.DurNs))
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, ", %s=%d", k, s.Attrs[k])
	}
	nkeys := make([]string, 0, len(s.Notes))
	for k := range s.Notes {
		nkeys = append(nkeys, k)
	}
	sort.Strings(nkeys)
	for _, k := range nkeys {
		fmt.Fprintf(b, ", %s=%s", k, s.Notes[k])
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.render(b, depth+1)
	}
}

func formatDur(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
}
