// Package obs is the engine's dependency-free observability kit: a metrics
// registry (atomic counters, gauges, fixed-bucket histograms) with Prometheus
// text-format exposition, and a lightweight span collector for per-query
// tracing (trace.go). Everything is stdlib-only so the engine keeps its
// zero-dependency posture.
//
// The package-level Default registry pre-registers every engine metric
// (metrics are declared next to their registration in defaults.go), so
// instrumented packages just import obs and touch the shared vars — no
// config plumbing through constructors. SetEnabled(false) turns every
// mutation into an early-return no-op; the bench suite uses that to measure
// the instrumentation's inline cost against a compiled-in no-op.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every metric mutation. Reads and exposition always work; a
// disabled registry simply stops moving.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns metric collection on or off process-wide. Off makes every
// Inc/Add/Set/Observe an early-return no-op (the bench overhead sweep's
// baseline). Tracing is unaffected: spans are allocated only when a caller
// asks for a trace, so they are already pay-for-use.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// metric is anything the registry can expose. name/help/kind feed the
// # HELP / # TYPE comment lines; write appends the sample lines.
type metric interface {
	metricName() string
	metricHelp() string
	metricKind() string // "counter", "gauge" or "histogram"
	write(b *strings.Builder)
}

// Registry holds a fixed set of metrics and renders them in Prometheus text
// exposition format (version 0.0.4). Registration happens at init time;
// duplicate names panic (they would silently shadow each other at scrape).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry. Most callers want Default.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// Default is the process-wide registry every engine metric registers with.
var Default = NewRegistry()

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.metricName()] {
		panic("obs: duplicate metric " + m.metricName())
	}
	r.names[m.metricName()] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers a monotonically increasing counter. Names must end in
// _total per the exposition conventions (enforced by the lint test).
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Gauge registers a gauge: a value that can go up and down.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// GaugeVec registers a family of gauges keyed by one label (e.g. table
// name). Children are created on first use and persist until the process
// exits; the label space is expected to be small and stable.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, label: label, kids: make(map[string]*Gauge)}
	r.register(v)
	return v
}

// Histogram registers a fixed-bucket histogram. bounds must be sorted
// ascending; an implicit +Inf bucket is appended. Buckets are stored
// non-cumulatively and accumulated at exposition time, so the rendered
// le-series is cumulative by construction.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending: " + name)
		}
	}
	h := &Histogram{name: name, help: help, bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	r.register(h)
	return h
}

// Each calls f for every registered metric's name and kind, in registration
// order. Used by the name-convention lint test.
func (r *Registry) Each(f func(name, kind string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		f(m.metricName(), m.metricKind())
	}
}

// WritePrometheus renders every registered metric in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range metrics {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.metricName(), m.metricHelp())
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.metricName(), m.metricKind())
		m.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry as an HTTP endpoint (the /metrics route).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Counter is a monotonically increasing counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative deltas are ignored: counters are monotone.
func (c *Counter) Add(n int64) {
	if n <= 0 || !enabled.Load() {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricKind() string { return "counter" }
func (c *Counter) write(b *strings.Builder) {
	b.WriteString(c.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

// Gauge is a value that can move in either direction.
type Gauge struct {
	name, help string
	bits       atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricKind() string { return "gauge" }
func (g *Gauge) write(b *strings.Builder) {
	b.WriteString(g.name)
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.Value()))
	b.WriteByte('\n')
}

// GaugeVec is a single-label gauge family.
type GaugeVec struct {
	name, help, label string
	mu                sync.Mutex
	kids              map[string]*Gauge
}

// With returns (creating if needed) the child gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.kids[value]
	if !ok {
		g = &Gauge{name: v.name, help: v.help}
		v.kids[value] = g
	}
	return g
}

func (v *GaugeVec) metricName() string { return v.name }
func (v *GaugeVec) metricHelp() string { return v.help }
func (v *GaugeVec) metricKind() string { return "gauge" }
func (v *GaugeVec) write(b *strings.Builder) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Gauge, len(keys))
	for i, k := range keys {
		kids[i] = v.kids[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		fmt.Fprintf(b, "%s{%s=\"%s\"} %s\n", v.name, v.label, escapeLabel(k), formatFloat(kids[i].Value()))
	}
}

// Histogram is a fixed-bucket histogram of float64 observations.
type Histogram struct {
	name, help string
	bounds     []float64
	buckets    []atomic.Uint64 // per-bucket (non-cumulative); last is +Inf
	count      atomic.Uint64
	sumBits    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. le-bucket
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if !enabled.Load() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricKind() string { return "histogram" }
func (h *Histogram) write(b *strings.Builder) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.name, formatFloat(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", h.name, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", h.name, h.count.Load())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	// %q already escapes quotes and backslashes and renders newlines as \n,
	// matching the exposition format's label escaping.
	q := strconv.Quote(s)
	return q[1 : len(q)-1]
}
