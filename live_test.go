package cohana

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestEngineLiveAppend covers the public live-ingestion surface: Append is
// visible immediately, Compact folds the delta into the sealed tier without
// changing results, and a journaled engine replays appends after a restart.
func TestEngineLiveAppend(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "t1.journal")
	eng, err := NewEngine(PaperTable1(), Options{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT country, COHORTSIZE, AGE, Sum(gold)
		FROM T BIRTH FROM action = "launch" COHORT BY country`
	res0, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	// A brand-new user in a country the sealed dictionaries do not hold.
	for _, row := range [][]any{
		{"newbie", int64(1368928800), "launch", "dwarf", "Narnia", int64(0)},
		{"newbie", int64(1369015200), "shop", "dwarf", "Narnia", int64(50)},
	} {
		if err := eng.Append(row...); err != nil {
			t.Fatal(err)
		}
	}
	if eng.DeltaRows() != 2 || eng.Stats().DeltaRows != 2 {
		t.Fatalf("delta rows = %d", eng.DeltaRows())
	}
	res1, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Equal(res0) || !strings.Contains(res1.String(), "Narnia") {
		t.Fatalf("append invisible to Query:\n%s", res1)
	}

	// A duplicate primary key is rejected.
	if err := eng.Append("newbie", int64(1368928800), "launch", "elf", "X", int64(1)); err == nil {
		t.Fatal("duplicate append accepted")
	}

	// Compaction seals the delta and preserves results exactly.
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if eng.DeltaRows() != 0 {
		t.Fatalf("delta rows after Compact = %d", eng.DeltaRows())
	}
	res2, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Equal(res1) {
		t.Fatalf("Compact changed results:\n%s", res2.Diff(res1))
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with the same journal. The engine never persisted its
	// compacted table (no Save), so the journal still holds the compacted
	// rows — a crash after a library-side compaction must not lose
	// acknowledged appends. Replay restores them into the delta.
	eng2, err := NewEngine(PaperTable1(), Options{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if eng2.DeltaRows() != 2 {
		t.Fatalf("replay after in-memory compaction restored %d rows, want 2", eng2.DeltaRows())
	}
	res3, err := eng2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Equal(res2) {
		t.Fatalf("restart after compaction changed results:\n%s", res3.Diff(res2))
	}
	if err := eng2.Append("late", int64(1368928800), "launch", "ranger", "Gondor", int64(0)); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Append("late", int64(1369015200), "shop", "ranger", "Gondor", int64(12)); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	eng3, err := NewEngine(PaperTable1(), Options{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer eng3.Close()
	if eng3.DeltaRows() != 4 {
		t.Fatalf("journal replay restored %d rows, want 4", eng3.DeltaRows())
	}
	res4, err := eng3.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res4.String(), "Gondor") {
		t.Fatalf("replayed append invisible:\n%s", res4)
	}
}
