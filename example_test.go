package cohana_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleEngine_Query runs the paper's Example 1 against the Table 1
// fixture: dwarf-born launch cohorts by country, gold spent on shopping per
// day of age.
func ExampleEngine_Query() {
	eng, err := cohana.NewEngine(cohana.PaperTable1(), cohana.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Query(`
		SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
		FROM GameActions
		BIRTH FROM action = "launch" AND role = "dwarf"
		AGE ACTIVITIES IN action = "shop"
		COHORT BY country`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s size=%d age=%d spent=%.0f\n", row.Cohort[0], row.Size, row.Age, row.Aggs[0])
	}
	// Output:
	// Australia size=1 age=1 spent=50
	// Australia size=1 age=2 spent=100
	// Australia size=1 age=3 spent=50
}

// ExampleEngine_QueryMixed shows a Section 3.5 mixed query: the cohort
// sub-query runs first, then the outer SQL filters its result.
func ExampleEngine_QueryMixed() {
	eng, err := cohana.NewEngine(cohana.PaperTable1(), cohana.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.QueryMixed(`
		WITH cohorts AS (
			SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
			FROM GameActions
			BIRTH FROM action = "launch"
			COHORT BY country
		)
		SELECT country, AGE, spent FROM cohorts
		WHERE spent >= 50 ORDER BY spent DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0], row[1], row[2])
	}
	// Output:
	// Australia 2 100
	// Australia 1 50
	// Australia 3 50
}
