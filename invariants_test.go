package cohana

// Whole-engine invariant tests: results must be independent of physical
// configuration (chunk size, parallelism, serialization round trips), and
// corrupted storage must fail cleanly rather than panic.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/storage"
)

// invariantQueries exercises all three operators plus Birth() and AGE.
var invariantQueries = []string{
	`SELECT country, COHORTSIZE, AGE, UserCount()
	 FROM G BIRTH FROM action = "launch" COHORT BY country`,
	`SELECT country, COHORTSIZE, AGE, Avg(gold), Count()
	 FROM G BIRTH FROM action = "shop" AND time BETWEEN "2013-05-20" AND "2013-06-01"
	 AGE ACTIVITIES IN action = "shop" AND country = Birth(country)
	 COHORT BY country`,
	`SELECT COHORTSIZE, AGE, Sum(gold), Min(session), Max(session)
	 FROM G BIRTH FROM action = "launch"
	 AGE ACTIVITIES IN AGE < 10
	 COHORT BY time(week), role`,
}

// TestResultsInvariantToPhysicalConfig runs each query under every
// combination of chunk size and parallelism and requires identical results.
func TestResultsInvariantToPhysicalConfig(t *testing.T) {
	table := Generate(GenConfig{Users: 150, Seed: 13})
	type cfg struct {
		chunk, par int
	}
	cfgs := []cfg{
		{0, 0},       // paper defaults: 256K chunks, single-threaded
		{256, 0},     // many chunks
		{1024, 4},    // multi-chunk, fixed parallelism
		{256, -1},    // many chunks, GOMAXPROCS workers
		{1 << 20, 0}, // single chunk
	}
	for qi, src := range invariantQueries {
		var want *Result
		for _, c := range cfgs {
			eng, err := NewEngine(table, Options{ChunkSize: c.chunk, Parallelism: c.par})
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Query(src)
			if err != nil {
				t.Fatalf("query %d cfg %+v: %v", qi, c, err)
			}
			if want == nil {
				want = got
				if len(got.Rows) == 0 {
					t.Fatalf("query %d returned no rows; invariant test is vacuous", qi)
				}
				continue
			}
			if d := want.Diff(got); d != "" {
				t.Errorf("query %d cfg %+v differs: %s", qi, c, d)
			}
		}
	}
}

// TestResultsSurviveSerializationRoundTrip runs the queries before and
// after a Serialize/Deserialize cycle.
func TestResultsSurviveSerializationRoundTrip(t *testing.T) {
	table := Generate(GenConfig{Users: 100, Seed: 17})
	eng, err := NewEngine(table, Options{ChunkSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/t.cohana"
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for qi, src := range invariantQueries {
		a, err := eng.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := re.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if d := a.Diff(b); d != "" {
			t.Errorf("query %d differs after round trip: %s", qi, d)
		}
	}
}

// TestDeserializeNeverPanics injects random corruption — truncation, byte
// flips, random garbage — into a serialized table and requires Deserialize
// to either succeed or return an error, never panic. (A successful decode of
// a corrupted payload is acceptable: checksums are out of scope; the format
// must only be safe, not tamper-evident.)
func TestDeserializeNeverPanics(t *testing.T) {
	table := Generate(GenConfig{Users: 30, Seed: 19})
	eng, err := NewEngine(table, Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/t.cohana"
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	// Save writes a v2 manifest; grab the (single) shard back and serialize
	// it in the legacy single-table format the fuzzing below mutates.
	sh, err := storage.ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := sh.Shard(0).Serialize()
	if err != nil {
		t.Fatal(err)
	}
	check := func(mutate func(rng *rand.Rand, b []byte) []byte) func(int64) bool {
		return func(seed int64) (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					t.Logf("panic: %v", r)
					ok = false
				}
			}()
			rng := rand.New(rand.NewSource(seed))
			b := mutate(rng, append([]byte(nil), buf...))
			_, _ = storage.Deserialize(b)
			return true
		}
	}
	truncate := check(func(rng *rand.Rand, b []byte) []byte {
		return b[:rng.Intn(len(b))]
	})
	flip := check(func(rng *rand.Rand, b []byte) []byte {
		for i := 0; i < 8; i++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		return b
	})
	garbage := check(func(rng *rand.Rand, b []byte) []byte {
		g := make([]byte, rng.Intn(4096))
		rng.Read(g)
		return append(b[:len("COHANA1\n")], g...) // valid magic, junk body
	})
	for name, f := range map[string]func(int64) bool{
		"truncate": truncate, "flip": flip, "garbage": garbage,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestConditionRoundTripsThroughParser checks that the String() rendering
// of parsed conditions re-parses to the same rendering — the property that
// makes Explain output and error messages trustworthy.
func TestConditionRoundTripsThroughParser(t *testing.T) {
	queries := []string{
		`SELECT c, Count() FROM G BIRTH FROM action = "x" AND (a = "p" OR NOT b != "q") COHORT BY c`,
		`SELECT c, Count() FROM G BIRTH FROM action = "x" AND t BETWEEN "2013-05-20" AND "2013-05-22" COHORT BY c`,
		`SELECT c, Count() FROM G BIRTH FROM action = "x" AND v IN ["a", "b"] AND g >= 3 COHORT BY c`,
		`SELECT c, Count() FROM G BIRTH FROM action = "x" AGE ACTIVITIES IN AGE < 5 AND r = Birth(r) COHORT BY c`,
	}
	for _, src := range queries {
		q1 := mustParse(t, src)
		render := func(q *Query) [2]string {
			var b, a string
			if q.BirthCond != nil {
				b = q.BirthCond.String()
			}
			if q.AgeCond != nil {
				a = q.AgeCond.String()
			}
			return [2]string{b, a}
		}
		r1 := render(q1)
		// Re-embed the rendered conditions in a fresh query and reparse.
		src2 := `SELECT c, Count() FROM G BIRTH FROM action = "x"`
		if r1[0] != "" {
			src2 += ` AND ` + r1[0]
		}
		if r1[1] != "" {
			src2 += ` AGE ACTIVITIES IN ` + r1[1]
		}
		src2 += ` COHORT BY c`
		q2 := mustParse(t, src2)
		if r2 := render(q2); r1 != r2 {
			t.Errorf("condition round trip changed:\n%q\n%q", r1, r2)
		}
	}
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	// Parse through the public Query path far enough to get the AST; use a
	// tiny engine so attribute resolution is irrelevant.
	stmt, err := parseForTest(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt
}

// parseForTest exposes the parser to the invariant tests without importing
// internal/parser in every test file.
func parseForTest(src string) (*Query, error) {
	stmt, err := parser.ParseCohort(src)
	if err != nil {
		return nil, err
	}
	return stmt.Query, nil
}
