package cohana

import (
	"context"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cohort"
	"repro/internal/plan"
)

// TestExplainAnalyzePinned pins the EXPLAIN ANALYZE output shape: the static
// plan followed by a measured execution tree whose per-shard and per-chunk
// lines carry rows/bytes/ns, with the delta union and plan-cache outcome
// visible — and whose counters agree exactly with cohort.ExecStats collected
// from an identical execution (the counters are deterministic for a fixed
// table state).
func TestExplainAnalyzePinned(t *testing.T) {
	eng, err := NewEngine(PaperTable1(), Options{ChunkSize: 3}) // one player per chunk
	if err != nil {
		t.Fatal(err)
	}
	// Two delta rows so the measured tree includes the union row scan.
	for _, row := range [][]any{
		{"newbie", int64(1368928800), "shop", "dwarf", "Narnia", int64(5)},
		{"newbie", int64(1369015200), "shop", "dwarf", "Narnia", int64(50)},
	} {
		if err := eng.Append(row...); err != nil {
			t.Fatal(err)
		}
	}
	const q = `SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM D
		AGE ACTIVITIES IN action = "shop"
		BIRTH FROM action = "shop" AND role = "dwarf"
		COHORT BY country`

	out, err := eng.Explain("EXPLAIN ANALYZE " + q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Optimized plan", // static half still present
		"Execution (EXPLAIN ANALYZE, measured):",
		"query:",
		"prepare:",
		"plan_cache=miss", // first time this engine sees the text
		"shard 0:",
		"chunks_total=3",
		"chunk 0:",
		"rows_scanned=",
		"value_bytes_decoded=",
		"encoded_checks=",
		"delta union:",
		"result_rows=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
	// Every measured line carries a duration (µs/ms/s suffix).
	measured := out[strings.Index(out, "Execution (EXPLAIN ANALYZE"):]
	durRE := regexp.MustCompile(`: [0-9.]+(µs|ms|s)`)
	for _, line := range strings.Split(measured, "\n")[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		if !durRE.MatchString(line) {
			t.Errorf("measured line without duration: %q", line)
		}
	}

	// The same text through the plain Explain keeps the unmeasured form.
	static, err := eng.Explain("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(static, "measured") {
		t.Errorf("plain EXPLAIN executed the query:\n%s", static)
	}

	// Consistency with ExecStats: a traced run's aggregated counters equal a
	// stats-collected run of the same plan over the same snapshot.
	snap := eng.Snapshot()
	_, root, err := snap.QueryTracedContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.planCache.Prepare(q, eng.Schema())
	if err != nil {
		t.Fatal(err)
	}
	var stats cohort.ExecStats
	if _, err := plan.ExecuteCached(eng.planCache, p, snap.shardInputs(), plan.ExecOptions{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	sh := root.Find("shard 0")
	if sh == nil {
		t.Fatalf("trace has no shard span:\n%s", root.Render())
	}
	if got, want := sh.Int("rows_scanned"), stats.RowsScanned.Load(); got != want {
		t.Errorf("trace rows_scanned = %d, ExecStats = %d", got, want)
	}
	if got, want := sh.Int("value_bytes_decoded"), stats.ValueBytesDecoded.Load(); got != want {
		t.Errorf("trace value_bytes_decoded = %d, ExecStats = %d", got, want)
	}
	if got, want := sh.Int("encoded_checks"), stats.EncodedChecks.Load(); got != want {
		t.Errorf("trace encoded_checks = %d, ExecStats = %d", got, want)
	}
	if got, want := sh.Int("chunks_scanned"), stats.ChunksScanned.Load(); got != want {
		t.Errorf("trace chunks_scanned = %d, ExecStats = %d", got, want)
	}
	if got, want := sh.Int("chunks_pruned"), stats.ChunksPruned.Load(); got != want {
		t.Errorf("trace chunks_pruned = %d, ExecStats = %d", got, want)
	}
	// Per-chunk spans sum to the shard aggregates.
	var chunkRows, chunkBytes int64
	for _, c := range sh.Children {
		if strings.HasPrefix(c.Name, "chunk ") {
			chunkRows += c.Int("rows_scanned")
			chunkBytes += c.Int("value_bytes_decoded")
		}
	}
	if chunkRows != sh.Int("rows_scanned") || chunkBytes != sh.Int("value_bytes_decoded") {
		t.Errorf("chunk spans (rows=%d bytes=%d) do not sum to shard aggregates (rows=%d bytes=%d)",
			chunkRows, chunkBytes, sh.Int("rows_scanned"), sh.Int("value_bytes_decoded"))
	}
	// And the measured text agrees with the span numbers it renders.
	rowsRE := regexp.MustCompile(`shard 0:.*[ ,]rows_scanned=(\d+)`)
	m := rowsRE.FindStringSubmatch(measured)
	if m == nil {
		t.Fatalf("no shard rows_scanned in measured output:\n%s", measured)
	}
	if n, _ := strconv.ParseInt(m[1], 10, 64); n != stats.RowsScanned.Load() {
		t.Errorf("rendered rows_scanned = %d, ExecStats = %d", n, stats.RowsScanned.Load())
	}
}

// TestExplainAnalyzeSharded covers the scatter-gather form: every shard gets
// its own measured span and the cross-shard merge is reported.
func TestExplainAnalyzeSharded(t *testing.T) {
	full := Generate(GenConfig{Users: 60, Days: 10, MeanActions: 6, Seed: 11})
	eng, err := NewEngine(full, Options{ChunkSize: 300, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.ExplainAnalyze(context.Background(), `
		SELECT country, COHORTSIZE, AGE, Sum(gold)
		FROM G BIRTH FROM action = "launch" COHORT BY country`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shard 0:", "shard 1:", "merge:"} {
		if !strings.Contains(out, want) {
			t.Errorf("sharded EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
}

// TestExplainAnalyzeMixed runs the WITH-wrapped form: the inner cohort query
// is traced and the outer SQL evaluation gets its own span.
func TestExplainAnalyzeMixed(t *testing.T) {
	eng := paperEngine(t)
	out, err := eng.Explain(`EXPLAIN ANALYZE
		WITH c AS (
			SELECT country, Count() FROM D BIRTH FROM action = "launch" COHORT BY country
		)
		SELECT country FROM c ORDER BY country LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Mixed query", "outer sql:", "query:"} {
		if !strings.Contains(out, want) {
			t.Errorf("mixed EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
}

func TestParseExplain(t *testing.T) {
	for _, tc := range []struct {
		src     string
		inner   string
		analyze bool
		ok      bool
	}{
		{"EXPLAIN SELECT x", "SELECT x", false, true},
		{"  explain analyze SELECT x", "SELECT x", true, true},
		{"Explain\n\tAnalyze\nSELECT x", "SELECT x", true, true},
		{"EXPLAINANALYZE SELECT x", "", false, false},
		{"SELECT x", "", false, false},
		{"EXPLAIN", "", false, false},
		{"explainer SELECT x", "", false, false},
	} {
		inner, analyze, ok := ParseExplain(tc.src)
		if inner != tc.inner || analyze != tc.analyze || ok != tc.ok {
			t.Errorf("ParseExplain(%q) = (%q, %v, %v), want (%q, %v, %v)",
				tc.src, inner, analyze, ok, tc.inner, tc.analyze, tc.ok)
		}
	}
}
