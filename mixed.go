package cohana

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/expr"
	"repro/internal/parser"
)

// MixedResult is the relation produced by a mixed query's outer SQL query
// (Section 3.5): plain columns over the cohort sub-query's output.
type MixedResult struct {
	Cols []string
	Rows [][]string
}

// String renders the result as an aligned text table.
func (m *MixedResult) String() string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(m.Cols, "\t"))
	for _, r := range m.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	return sb.String()
}

// QueryMixed parses and runs a mixed query. Evaluation follows the paper's
// "cohort query first" rule: the inner cohort query runs on the COHANA
// engine, then the outer SQL query filters, projects, orders and limits the
// result relation — it can never remove birth activity tuples because it
// only ever sees aggregated buckets.
func (e *Engine) QueryMixed(src string) (*MixedResult, error) {
	return e.QueryMixedContext(context.Background(), src)
}

// QueryMixedContext is QueryMixed with cancellation: the inner cohort
// query's scatter-gather fan-out stops early when ctx is done (see
// ExecuteContext).
func (e *Engine) QueryMixedContext(ctx context.Context, src string) (*MixedResult, error) {
	return e.Snapshot().QueryMixedContext(ctx, src)
}

// QueryMixedContext parses and runs a mixed query against the snapshot. The
// inner cohort query's front end goes through the engine's plan cache (see
// Snapshot.QueryContext).
func (s *Snapshot) QueryMixedContext(ctx context.Context, src string) (*MixedResult, error) {
	p, err := s.eng.planCache.Prepare(src, s.eng.live.Schema())
	if err != nil {
		return nil, err
	}
	if p.Stmt.Mixed == nil {
		return nil, fmt.Errorf("cohana: plain cohort query passed to QueryMixed; use Query")
	}
	if err := validateSelectList(p.Stmt.Mixed.Inner); err != nil {
		return nil, err
	}
	inner, err := s.executePlan(ctx, p)
	if err != nil {
		return nil, err
	}
	return runOuter(p.Stmt.Mixed, inner)
}

// resultCols enumerates the addressable columns of a cohort result: the
// cohort attributes, AGE, COHORTSIZE, and each aggregate (by alias or
// canonical name).
type resultCols struct {
	res *Result
}

// colKind classifies outer-query columns.
type outerKind uint8

const (
	outerKey outerKind = iota
	outerAge
	outerSize
	outerAgg
)

type outerCol struct {
	kind outerKind
	idx  int // key index or aggregate index
	name string
}

func (rc resultCols) resolve(name string) (outerCol, error) {
	switch strings.ToLower(name) {
	case "age":
		return outerCol{kind: outerAge, name: "AGE"}, nil
	case "cohortsize":
		return outerCol{kind: outerSize, name: "COHORTSIZE"}, nil
	}
	for i, k := range rc.res.KeyCols {
		if strings.EqualFold(k, name) {
			return outerCol{kind: outerKey, idx: i, name: k}, nil
		}
	}
	for i, a := range rc.res.AggNames {
		if strings.EqualFold(a, name) {
			return outerCol{kind: outerAgg, idx: i, name: a}, nil
		}
	}
	return outerCol{}, fmt.Errorf("cohana: outer query references unknown column %q", name)
}

// outerValue is a string-or-number value of the outer query.
type outerValue struct {
	isStr bool
	str   string
	num   float64
}

func (rc resultCols) value(r Row, c outerCol) outerValue {
	switch c.kind {
	case outerKey:
		return outerValue{isStr: true, str: r.Cohort[c.idx]}
	case outerAge:
		return outerValue{num: float64(r.Age)}
	case outerSize:
		return outerValue{num: float64(r.Size)}
	default:
		return outerValue{num: r.Aggs[c.idx]}
	}
}

func (v outerValue) display() string {
	if v.isStr {
		return v.str
	}
	if v.num == math.Trunc(v.num) && math.Abs(v.num) < 1e15 {
		return fmt.Sprintf("%d", int64(v.num))
	}
	return fmt.Sprintf("%.2f", v.num)
}

func (v outerValue) compare(o outerValue) (int, error) {
	if v.isStr != o.isStr {
		return 0, fmt.Errorf("cohana: outer query compares string with number")
	}
	if v.isStr {
		return strings.Compare(v.str, o.str), nil
	}
	switch {
	case v.num < o.num:
		return -1, nil
	case v.num > o.num:
		return 1, nil
	default:
		return 0, nil
	}
}

// outerPred is a compiled outer WHERE predicate.
type outerPred func(Row) (bool, error)

// compileOuter compiles the restricted expression language over result
// columns. Birth() and bare attribute coercions do not apply here: the
// outer query sees a plain relation.
func compileOuter(e expr.Expr, rc resultCols) (outerPred, error) {
	valueFn := func(e expr.Expr) (func(Row) outerValue, error) {
		switch x := e.(type) {
		case expr.Col:
			c, err := rc.resolve(x.Name)
			if err != nil {
				return nil, err
			}
			return func(r Row) outerValue { return rc.value(r, c) }, nil
		case expr.Age:
			return func(r Row) outerValue { return outerValue{num: float64(r.Age)} }, nil
		case expr.Lit:
			v := toOuter(x.Val)
			return func(Row) outerValue { return v }, nil
		case expr.Birth:
			return nil, fmt.Errorf("cohana: Birth() is not available in the outer query")
		default:
			return nil, fmt.Errorf("cohana: unsupported outer scalar %s", e)
		}
	}
	switch x := e.(type) {
	case expr.And:
		l, err := compileOuter(x.L, rc)
		if err != nil {
			return nil, err
		}
		r, err := compileOuter(x.R, rc)
		if err != nil {
			return nil, err
		}
		return func(row Row) (bool, error) {
			lv, err := l(row)
			if err != nil || !lv {
				return false, err
			}
			return r(row)
		}, nil
	case expr.Or:
		l, err := compileOuter(x.L, rc)
		if err != nil {
			return nil, err
		}
		r, err := compileOuter(x.R, rc)
		if err != nil {
			return nil, err
		}
		return func(row Row) (bool, error) {
			lv, err := l(row)
			if err != nil || lv {
				return lv, err
			}
			return r(row)
		}, nil
	case expr.Not:
		p, err := compileOuter(x.E, rc)
		if err != nil {
			return nil, err
		}
		return func(row Row) (bool, error) {
			v, err := p(row)
			return !v, err
		}, nil
	case expr.Cmp:
		l, err := valueFn(x.L)
		if err != nil {
			return nil, err
		}
		r, err := valueFn(x.R)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(row Row) (bool, error) {
			c, err := l(row).compare(r(row))
			if err != nil {
				return false, err
			}
			return cmpHolds(op, c), nil
		}, nil
	case expr.In:
		l, err := valueFn(x.L)
		if err != nil {
			return nil, err
		}
		list := make([]outerValue, len(x.List))
		for i, v := range x.List {
			list[i] = toOuter(v)
		}
		return func(row Row) (bool, error) {
			v := l(row)
			for _, w := range list {
				c, err := v.compare(w)
				if err != nil {
					return false, err
				}
				if c == 0 {
					return true, nil
				}
			}
			return false, nil
		}, nil
	case expr.Between:
		l, err := valueFn(x.L)
		if err != nil {
			return nil, err
		}
		lo, hi := toOuter(x.Lo), toOuter(x.Hi)
		return func(row Row) (bool, error) {
			v := l(row)
			cl, err := v.compare(lo)
			if err != nil {
				return false, err
			}
			ch, err := v.compare(hi)
			if err != nil {
				return false, err
			}
			return cl >= 0 && ch <= 0, nil
		}, nil
	default:
		return nil, fmt.Errorf("cohana: unsupported outer condition %s", e)
	}
}

func toOuter(v expr.Value) outerValue {
	if v.Kind == expr.KindString {
		return outerValue{isStr: true, str: v.Str}
	}
	return outerValue{num: float64(v.Int)}
}

func cmpHolds(op expr.CmpOp, c int) bool {
	switch op {
	case expr.OpEq:
		return c == 0
	case expr.OpNe:
		return c != 0
	case expr.OpLt:
		return c < 0
	case expr.OpLe:
		return c <= 0
	case expr.OpGt:
		return c > 0
	case expr.OpGe:
		return c >= 0
	default:
		return false
	}
}

// runOuter applies the outer WHERE / projection / ORDER BY / LIMIT to the
// inner result.
func runOuter(m *parser.MixedStmt, inner *Result) (*MixedResult, error) {
	rc := resultCols{res: inner}
	cols := make([]outerCol, len(m.Cols))
	for i, name := range m.Cols {
		c, err := rc.resolve(name)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	var pred outerPred
	if m.Where != nil {
		var err error
		if pred, err = compileOuter(m.Where, rc); err != nil {
			return nil, err
		}
	}
	rows := make([]Row, 0, len(inner.Rows))
	for _, r := range inner.Rows {
		if pred != nil {
			ok, err := pred(r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		rows = append(rows, r)
	}
	if m.Order != nil {
		oc, err := rc.resolve(m.Order.Col)
		if err != nil {
			return nil, err
		}
		desc := m.Order.Desc
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			c, err := rc.value(rows[i], oc).compare(rc.value(rows[j], oc))
			if err != nil {
				sortErr = err
			}
			if desc {
				return c > 0
			}
			return c < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if m.Limit >= 0 && len(rows) > m.Limit {
		rows = rows[:m.Limit]
	}
	out := &MixedResult{}
	for _, c := range cols {
		out.Cols = append(out.Cols, c.name)
	}
	for _, r := range rows {
		disp := make([]string, len(cols))
		for i, c := range cols {
			disp[i] = rc.value(r, c).display()
		}
		out.Rows = append(out.Rows, disp)
	}
	return out, nil
}
