package cohana

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestPrepareExecuteMatchesQuery(t *testing.T) {
	eng := paperEngine(t)
	src := `
		SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
		FROM D
		BIRTH FROM action = "launch" AND role = "dwarf"
		AGE ACTIVITIES IN action = "shop"
		COHORT BY country`
	stmt, err := eng.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.IsMixed() {
		t.Fatal("plain cohort statement reports mixed")
	}
	want, err := eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("prepared execution differs from ad-hoc:\n%s", got.Diff(want))
	}
	// Static errors surface at Prepare, not Execute.
	if _, err := eng.Prepare(`SELECT role, Count() FROM D BIRTH FROM action = "launch" COHORT BY country`); err == nil || !strings.Contains(err.Error(), "COHORT BY") {
		t.Errorf("Prepare accepted a bad select list: %v", err)
	}
	if _, err := eng.Prepare(`SELECT nonsense`); err == nil {
		t.Error("Prepare accepted a malformed query")
	}
	// Wrong-mode executions are rejected cleanly.
	if _, err := stmt.ExecuteMixed(); err == nil {
		t.Error("ExecuteMixed accepted a plain cohort statement")
	}
	if s, err := stmt.Explain(); err != nil || s == "" {
		t.Errorf("Explain: %q, %v", s, err)
	}
}

func TestPrepareSharesThePlanCache(t *testing.T) {
	eng := paperEngine(t)
	src := `SELECT country, COHORTSIZE, AGE, Sum(gold) FROM D BIRTH FROM action = "launch" COHORT BY country`
	if _, err := eng.Prepare(src); err != nil {
		t.Fatal(err)
	}
	st := eng.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats after first Prepare = %+v", st)
	}
	// Re-preparing (any whitespace variant) and ad-hoc Query of the same
	// text both hit the cached plan.
	if _, err := eng.Prepare("  " + src + "\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(src); err != nil {
		t.Fatal(err)
	}
	st = eng.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats after hitting Prepare + Query = %+v", st)
	}
}

func TestPreparedStatementSeesAppendsAndCompaction(t *testing.T) {
	eng := paperEngine(t)
	src := `SELECT country, COHORTSIZE, AGE, Sum(gold) FROM D BIRTH FROM action = "launch" COHORT BY country`
	stmt, err := eng.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]any{
		{"newbie", int64(1368928800), "launch", "dwarf", "Narnia", int64(0)},
		{"newbie", int64(1369015200), "shop", "dwarf", "Narnia", int64(50)},
	} {
		if err := eng.Append(row...); err != nil {
			t.Fatal(err)
		}
	}
	res1, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Equal(res0) || !strings.Contains(res1.String(), "Narnia") {
		t.Fatalf("prepared statement blind to appends:\n%s", res1)
	}
	rebinds := eng.PlanCacheStats().Rebinds
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	res2, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Equal(res1) {
		t.Fatalf("compaction changed the prepared statement's result:\n%s", res2.Diff(res1))
	}
	if after := eng.PlanCacheStats().Rebinds; after <= rebinds {
		t.Fatal("compaction did not re-bind the prepared plan's shard")
	}
}

func TestPrepareMixedStatement(t *testing.T) {
	eng := paperEngine(t)
	src := `WITH c AS (SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
		FROM D BIRTH FROM action = "launch" COHORT BY country)
		SELECT country, spent FROM c WHERE spent > 0 ORDER BY spent DESC`
	stmt, err := eng.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.IsMixed() {
		t.Fatal("mixed statement not detected")
	}
	if _, err := stmt.Execute(); err == nil {
		t.Error("Execute accepted a mixed statement")
	}
	want, err := eng.QueryMixed(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stmt.ExecuteMixed()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("prepared mixed result differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestConcurrentPrepareAndExecute hammers one engine from many goroutines —
// prepared and ad-hoc, with appends and compactions interleaved — and is
// meaningful under -race: the plan cache, shard bindings and snapshots must
// tolerate full concurrency.
func TestConcurrentPrepareAndExecute(t *testing.T) {
	eng := paperEngine(t)
	queries := []string{
		`SELECT country, COHORTSIZE, AGE, Sum(gold) FROM D BIRTH FROM action = "launch" COHORT BY country`,
		`SELECT role, COHORTSIZE, AGE, Count() FROM D BIRTH FROM action = "launch" COHORT BY role`,
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				src := queries[(g+i)%len(queries)]
				stmt, err := eng.Prepare(src)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := stmt.ExecuteContext(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := int64(1368950000)
		for i := 0; i < 10; i++ {
			if err := eng.Append("conc-user", base+int64(i)*1000, "shop", "dwarf", "Narnia", int64(i)); err != nil {
				t.Error(err)
				return
			}
			if i%4 == 3 {
				if err := eng.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	st := eng.PlanCacheStats()
	if st.Misses != uint64(len(queries)) || st.Hits == 0 {
		t.Fatalf("plan cache stats = %+v, want %d misses and some hits", st, len(queries))
	}
}
