package cohana

// Benchmark suite: one testing.B target per table/figure of the paper's
// evaluation (Section 5), plus ablation benchmarks for the design choices
// called out in DESIGN.md (chunk pruning, birth-selection push-down as chunk
// skipping, parallel chunk execution). Run with
//
//	go test -bench=. -benchmem
//
// The cmd/cohana-bench binary regenerates the figures as printed tables;
// these benchmarks are the stable per-experiment measurement targets.

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cohort"
	"repro/internal/plan"
	"repro/internal/storage"
)

// benchWorkload is shared across benchmarks: 200 users at scale 1 keeps the
// full sweep tractable; raise via cmd/cohana-bench for larger runs.
var (
	benchOnce sync.Once
	benchWL   *bench.Workload
)

func wl() *bench.Workload {
	benchOnce.Do(func() { benchWL = bench.NewWorkload(200, 99) })
	return benchWL
}

func runScheme(b *testing.B, s bench.Scheme, q *cohort.Query, scale, chunkSize int) {
	b.Helper()
	w := wl()
	// Materialize inputs outside the timer: COHANA's compressed store, or
	// the per-birth-action MV (warmed through a first run).
	if s == bench.COHANA {
		w.Store(scale, chunkSize)
	}
	if s == bench.MonetM || s == bench.PGM {
		if _, _, err := w.Run(s, q, scale, chunkSize); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.Run(s, q, scale, chunkSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 measures COHANA's Q1-Q4 across chunk sizes (Figure 6a-d).
func BenchmarkFig6(b *testing.B) {
	for _, qn := range bench.CoreQueryNames {
		q := bench.CoreQueries()[qn]
		for _, cs := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
			b.Run(qn+"/chunk="+chunkName(cs), func(b *testing.B) {
				runScheme(b, bench.COHANA, q, 1, cs)
			})
		}
	}
}

// BenchmarkFig7 measures compression (storage build), whose output size is
// the Figure 7 metric; b.ReportMetric carries bytes.
func BenchmarkFig7(b *testing.B) {
	src := wl().Source(1)
	for _, cs := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
		b.Run("chunk="+chunkName(cs), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				st, err := storage.Build(src, storage.Options{ChunkSize: cs})
				if err != nil {
					b.Fatal(err)
				}
				size = st.EncodedSize()
			}
			b.ReportMetric(float64(size), "storage-bytes")
		})
	}
}

// BenchmarkFig8 measures birth-selection selectivity: Q5 with a narrow,
// medium and full birth date range (Figure 8's sweep endpoints).
func BenchmarkFig8(b *testing.B) {
	cases := []struct {
		name   string
		d1, d2 string
	}{
		{"narrow", "2013-05-19", "2013-05-21"},
		{"half", "2013-05-19", "2013-06-03"},
		{"full", "2013-05-19", "2013-06-26"},
	}
	for _, c := range cases {
		b.Run("Q5/"+c.name, func(b *testing.B) {
			runScheme(b, bench.COHANA, bench.Q5(c.d1, c.d2), 1, storage.DefaultChunkSize)
		})
		b.Run("Q6/"+c.name, func(b *testing.B) {
			runScheme(b, bench.COHANA, bench.Q6(c.d1, c.d2), 1, storage.DefaultChunkSize)
		})
	}
}

// BenchmarkFig9 measures age-selection limits: Q7/Q8 with g = 1, 7, 14
// (Figure 9's sweep endpoints).
func BenchmarkFig9(b *testing.B) {
	for _, g := range []int{1, 7, 14} {
		b.Run("Q7/g="+itoa(g), func(b *testing.B) {
			runScheme(b, bench.COHANA, bench.Q7(g), 1, storage.DefaultChunkSize)
		})
		b.Run("Q8/g="+itoa(g), func(b *testing.B) {
			runScheme(b, bench.COHANA, bench.Q8(g), 1, storage.DefaultChunkSize)
		})
	}
}

// BenchmarkFig10 measures preprocessing: COHANA compression vs MV builds
// (Figure 10).
func BenchmarkFig10(b *testing.B) {
	w := wl()
	b.Run("COHANA-compress", func(b *testing.B) {
		src := w.Source(1)
		for i := 0; i < b.N; i++ {
			if _, err := storage.Build(src, storage.Options{ChunkSize: storage.DefaultChunkSize}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MV-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.BuildTimes(1, "launch")
		}
	})
}

// BenchmarkFig11 measures Q1-Q4 under all five schemes (Figure 11a-d).
func BenchmarkFig11(b *testing.B) {
	for _, qn := range bench.CoreQueryNames {
		q := bench.CoreQueries()[qn]
		for _, s := range bench.AllSchemes {
			b.Run(qn+"/"+string(s), func(b *testing.B) {
				if s == bench.MonetM || s == bench.PGM {
					if _, _, err := wl().Run(s, q, 1, storage.DefaultChunkSize); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
				}
				runScheme(b, s, q, 1, storage.DefaultChunkSize)
			})
		}
	}
}

// BenchmarkAblationPruning quantifies chunk pruning (Section 4.2's
// intermediate filtering step) by running Q4 — whose selective birth
// condition prunes aggressively — with pruning on and off.
func BenchmarkAblationPruning(b *testing.B) {
	w := wl()
	st := w.Store(1, 4<<10) // small chunks: more pruning opportunities
	q := bench.Q4()
	for _, disable := range []bool{false, true} {
		name := "pruning=on"
		if disable {
			name = "pruning=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.Execute(q, st, plan.ExecOptions{DisablePruning: disable}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallel measures the optional chunk-parallel execution
// (a deviation from the paper's single-threaded setting, off by default).
func BenchmarkAblationParallel(b *testing.B) {
	w := wl()
	st := w.Store(2, 4<<10)
	q := bench.Q1()
	for _, par := range []int{0, -1} {
		name := "serial"
		if par != 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.Execute(q, st, plan.ExecOptions{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryParsing isolates parser cost (negligible next to execution,
// as the paper assumes when it ignores parse time).
func BenchmarkQueryParsing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Q4()
	}
}

func chunkName(cs int) string {
	switch {
	case cs >= 1<<20:
		return itoa(cs>>20) + "M"
	default:
		return itoa(cs>>10) + "K"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
