package cohana

import (
	"strings"
	"testing"
)

func TestExplainCohort(t *testing.T) {
	tbl := PaperTable1()
	eng, err := NewEngine(tbl, Options{ChunkSize: 3}) // one player per chunk
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Explain(`
		SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM D
		AGE ACTIVITIES IN action = "shop"
		BIRTH FROM action = "shop" AND role = "dwarf"
		COHORT BY country`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Birth action", "shop", "Optimized plan", "BirthSelect", "AgeSelect", "TableScan", "prunable"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Player 003 never shopped (birth-action pruning) and player 002's
	// chunk contains no dwarf role (birth-condition dictionary pruning), so
	// two of the three chunks are prunable.
	if !strings.Contains(out, "3 total, 2 prunable") {
		t.Errorf("pruning summary wrong:\n%s", out)
	}
	// In the optimized rendering the birth selection sits directly above
	// the scan (below the age selection).
	bi := strings.Index(out[strings.Index(out, "Optimized"):], "BirthSelect")
	ai := strings.Index(out[strings.Index(out, "Optimized"):], "AgeSelect")
	if bi < ai {
		t.Errorf("birth selection not pushed below age selection:\n%s", out)
	}
}

func TestExplainMixed(t *testing.T) {
	eng := paperEngine(t)
	out, err := eng.Explain(`
		WITH c AS (
			SELECT country, Count() FROM D BIRTH FROM action = "launch" COHORT BY country
		)
		SELECT country FROM c WHERE country = "Australia" ORDER BY country LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Mixed query", "cohort sub-query first", "OuterSQL", "LIMIT 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainErrors(t *testing.T) {
	eng := paperEngine(t)
	if _, err := eng.Explain("not a query"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := eng.Explain(`SELECT bogus, Count() FROM D BIRTH FROM action = "launch" COHORT BY bogus`); err == nil {
		t.Error("invalid attribute accepted")
	}
}
