package cohana

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/activity"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/storage"
)

// rareActionTable builds a table where action "rare" occurs only among the
// first few users, so chunk pruning genuinely skips most chunks for a
// BIRTH FROM action = "rare" query.
func rareActionTable(t *testing.T, users int) *ActivityTable {
	t.Helper()
	tbl := activity.NewTable(activity.PaperSchema())
	base := int64(1368928800)
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("u%03d", u)
		for d := 0; d < 4; d++ {
			if err := tbl.Append(user, base+int64(d)*86400, "common", "dwarf", "Australia", int64(d)); err != nil {
				t.Fatal(err)
			}
		}
		if u < 3 {
			if err := tbl.Append(user, base+5*86400, "rare", "dwarf", "Australia", int64(7)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tbl.SortByPK(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// saveRareTable commits the rare-action fixture as a 2-shard v3 manifest.
func saveRareTable(t *testing.T) string {
	t.Helper()
	eng, err := NewEngine(rareActionTable(t, 40), Options{ChunkSize: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rare.cohana")
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

const rareQuery = `SELECT country, UserCount() FROM D BIRTH FROM action = "rare" COHORT BY country`

// TestOpenLazyExplainZeroSegmentReads pins the ISSUE's cold-start contract at
// the engine level: Open (lazy by default) plus a plain EXPLAIN answer from
// the manifest alone — zero chunk segments are read. The first real query
// then pays only for the chunks it scans.
func TestOpenLazyExplainZeroSegmentReads(t *testing.T) {
	path := saveRareTable(t)
	before := obs.SegmentReadsTotal.Value()
	eng, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Explain("EXPLAIN " + rareQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty explain output")
	}
	if got := obs.SegmentReadsTotal.Value() - before; got != 0 {
		t.Fatalf("open + EXPLAIN performed %d segment reads, want 0", got)
	}
	if _, err := eng.Query(rareQuery); err != nil {
		t.Fatal(err)
	}
	if got := obs.SegmentReadsTotal.Value() - before; got == 0 {
		t.Fatal("executing the query read no segments; fixture broken")
	}
}

// TestLazyQueryDecodesExactlyUnprunedChunks pins scan-proportional decoding:
// a query whose birth action lives in k of n chunks decodes exactly k
// segments, and a repeat run decodes none (cache hits).
func TestLazyQueryDecodesExactlyUnprunedChunks(t *testing.T) {
	path := saveRareTable(t)
	// A private cache: the process-wide default may already hold this
	// fixture's content-addressed segments from another test.
	st, err := storage.ReadShardedWith(path, storage.ReadOptions{Lazy: true, Cache: storage.NewChunkCache(0)})
	if err != nil {
		t.Fatal(err)
	}
	live, err := ingest.OpenSharded(st, ingest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng := EngineForIngest(live, Options{})
	// Expected k: chunks whose manifest stats admit the "rare" action gid.
	k, n := 0, 0
	for _, v := range eng.live.Views() {
		sealed := v.Sealed
		actionCol := sealed.Schema().ActionCol()
		gid, ok := sealed.LookupString(actionCol, "rare")
		if !ok {
			t.Fatal("action \"rare\" missing from dictionary")
		}
		for ci := 0; ci < sealed.NumChunks(); ci++ {
			n++
			if sealed.ChunkMayHaveGID(ci, actionCol, gid) {
				k++
			}
		}
	}
	if k == 0 || k == n {
		t.Fatalf("fixture prunes nothing: %d of %d chunks scannable", k, n)
	}
	before := obs.SegmentReadsTotal.Value()
	if _, err := eng.Query(rareQuery); err != nil {
		t.Fatal(err)
	}
	if got := obs.SegmentReadsTotal.Value() - before; got != uint64(k) {
		t.Fatalf("query over %d scannable of %d chunks read %d segments, want %d", k, n, got, k)
	}
	// Second run: everything it needs is resident in the process cache.
	if _, err := eng.Query(rareQuery); err != nil {
		t.Fatal(err)
	}
	if got := obs.SegmentReadsTotal.Value() - before; got != uint64(k) {
		t.Fatalf("repeat query re-read segments: %d total reads, want %d", got, k)
	}
}

// TestLazyEagerQueryEquivalence runs a battery of queries through a lazy and
// an eager open of the same saved table and requires bit-identical results —
// including with a tiny private cache standing in for "table larger than
// RAM" (shards keep evicting each other mid-query).
func TestLazyEagerQueryEquivalence(t *testing.T) {
	tbl := Generate(GenConfig{Users: 50, Days: 10, MeanActions: 8, Seed: 123})
	eng, err := NewEngine(tbl, Options{ChunkSize: 64, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.cohana")
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT country, UserCount() FROM D BIRTH FROM action = "launch" COHORT BY country`,
		`SELECT role, AGE, Sum(gold), UserCount() FROM D
		   BIRTH FROM action = "launch" AND country = "China"
		   AGE ACTIVITIES IN action = "shop" COHORT BY role`,
		`SELECT country, COHORTSIZE, AGE, Count() FROM D
		   BIRTH FROM action = "shop" COHORT BY country`,
	}
	eager, err := Open(path, Options{EagerLoad: true, Parallelism: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 0} {
		// A private cache keeps the tiny budget from leaking to other tests.
		st, err := storage.ReadShardedWith(path, storage.ReadOptions{Lazy: true, Cache: storage.NewChunkCache(budget)})
		if err != nil {
			t.Fatal(err)
		}
		live, err := ingest.OpenSharded(st, ingest.Config{})
		if err != nil {
			t.Fatal(err)
		}
		lazyEng := EngineForIngest(live, Options{Parallelism: -1})
		for qi, q := range queries {
			want, err := eager.Query(q)
			if err != nil {
				t.Fatalf("query %d eager: %v", qi, err)
			}
			got, err := lazyEng.Query(q)
			if err != nil {
				t.Fatalf("query %d lazy (budget %d): %v", qi, budget, err)
			}
			if d := want.Diff(got); d != "" {
				t.Errorf("query %d (budget %d) lazy differs from eager:\n%s", qi, budget, d)
			}
		}
	}
}
