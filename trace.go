package cohana

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/plan"
)

// TraceSpan is one timed phase of a traced query execution. Spans form a
// tree — query → prepare / per-shard scans (with per-chunk detail and delta
// union) / merge — and carry measured rows/bytes/ns as numeric attributes.
// The JSON encoding of a TraceSpan is what a `"trace": true` query request
// returns; Render() is the text form EXPLAIN ANALYZE embeds.
type TraceSpan = obs.Span

// QueryTraced parses and runs a cohort query with tracing enabled, returning
// the result and the root span of the execution trace.
func (e *Engine) QueryTraced(ctx context.Context, src string) (*Result, *TraceSpan, error) {
	return e.Snapshot().QueryTracedContext(ctx, src)
}

// QueryTracedContext is Snapshot.QueryContext with tracing: every execution
// phase — prepare (with the plan-cache outcome), each shard's compile/bind
// and chunk scans, delta union, cross-shard merge — lands on the returned
// span tree with measured durations and decoder-level counters.
func (s *Snapshot) QueryTracedContext(ctx context.Context, src string) (*Result, *TraceSpan, error) {
	root := obs.NewSpan("query")
	p, err := s.prepareTraced(root, src)
	if err != nil {
		return nil, nil, err
	}
	if p.Stmt.Mixed != nil {
		return nil, nil, fmt.Errorf("cohana: mixed query passed to QueryTraced; use QueryMixedTraced")
	}
	if err := validateSelectList(p.Stmt.Cohort); err != nil {
		return nil, nil, err
	}
	res, err := s.executePlanTraced(ctx, p, root)
	if err != nil {
		return nil, nil, err
	}
	root.End()
	return res, root, nil
}

// QueryMixedTracedContext is QueryMixedContext with tracing (see
// QueryTracedContext); the outer SQL evaluation gets its own span.
func (s *Snapshot) QueryMixedTracedContext(ctx context.Context, src string) (*MixedResult, *TraceSpan, error) {
	root := obs.NewSpan("query")
	p, err := s.prepareTraced(root, src)
	if err != nil {
		return nil, nil, err
	}
	if p.Stmt.Mixed == nil {
		return nil, nil, fmt.Errorf("cohana: plain cohort query passed to QueryMixedTraced; use QueryTraced")
	}
	if err := validateSelectList(p.Stmt.Mixed.Inner); err != nil {
		return nil, nil, err
	}
	inner, err := s.executePlanTraced(ctx, p, root)
	if err != nil {
		return nil, nil, err
	}
	sp := root.Child("outer sql")
	m, err := runOuter(p.Stmt.Mixed, inner)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	sp.SetInt("result_rows", int64(len(m.Rows)))
	root.End()
	return m, root, nil
}

// prepareTraced runs the plan-cache front end under a "prepare" child span
// annotated with the cache outcome.
func (s *Snapshot) prepareTraced(root *TraceSpan, src string) (*plan.CachedPlan, error) {
	sp := root.Child("prepare")
	p, hit, err := s.eng.planCache.PrepareInfo(src, s.eng.live.Schema())
	sp.End()
	if err != nil {
		return nil, err
	}
	if hit {
		sp.SetNote("plan_cache", "hit")
	} else {
		sp.SetNote("plan_cache", "miss")
	}
	return p, nil
}

// executePlanTraced is executePlan threading the trace root through the
// scatter-gather executor.
func (s *Snapshot) executePlanTraced(ctx context.Context, p *plan.CachedPlan, root *TraceSpan) (*Result, error) {
	return plan.ExecuteCached(s.eng.planCache, p, s.shardInputs(), plan.ExecOptions{
		Parallelism: s.eng.opts.Parallelism,
		Pool:        s.eng.opts.Pool,
		Ctx:         ctx,
		Trace:       root,
	})
}
